"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.fault_model import FaultModel


@pytest.fixture
def model_file(tmp_path, small_model: FaultModel) -> str:
    path = tmp_path / "model.json"
    path.write_text(json.dumps(small_model.to_dict()), encoding="utf-8")
    return str(path)


class TestScenariosCommand:
    def test_lists_builtin_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "high-quality" in output
        assert "many-small-faults" in output
        assert "protection-system" in output

    def test_lists_descriptions_from_registry(self, capsys):
        from repro.experiments.scenarios import SCENARIOS

        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for entry in SCENARIOS.values():
            assert entry.description in output


class TestPmaxTableCommand:
    def test_default_table(self, capsys):
        assert main(["pmax-table"]) == 0
        output = capsys.readouterr().out
        assert "0.866" in output
        assert "0.3317" in output or "0.332" in output

    def test_custom_values(self, capsys):
        assert main(["pmax-table", "0.2"]) == 0
        output = capsys.readouterr().out
        assert f"{np.sqrt(0.2 * 1.2):.4f}" in output


class TestAssessCommand:
    def test_text_report_from_file(self, capsys, model_file):
        assert main(["assess", "--model", model_file]) == 0
        output = capsys.readouterr().out
        assert "Gain from diversity" in output

    def test_json_report_from_scenario(self, capsys):
        assert main(["assess", "--scenario", "high-quality", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["fault_count"] == 5
        assert data["one_out_of_two"]["mean_pfd"] < data["single_version"]["mean_pfd"]

    def test_custom_confidence(self, capsys, model_file):
        assert main(["assess", "--model", model_file, "--confidence", "0.9", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["confidence"] == 0.9

    def test_model_and_scenario_mutually_exclusive(self, model_file):
        with pytest.raises(SystemExit):
            main(["assess", "--model", model_file, "--scenario", "high-quality"])

    def test_requires_a_model_source(self):
        with pytest.raises(SystemExit):
            main(["assess"])


class TestGainCommand:
    def test_gain_json(self, capsys, model_file):
        assert main(["gain", "--model", model_file]) == 0
        data = json.loads(capsys.readouterr().out)
        assert 0.0 <= data["risk_ratio"] <= 1.0
        assert data["mean_ratio"] <= data["guaranteed_mean_ratio"] + 1e-12


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "pmax-table", "0.01"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "0.1005" in completed.stdout


class TestSimulateCommand:
    def test_simulate_json_summary(self, capsys, model_file):
        assert main(["simulate", "--model", model_file, "--replications", "5000", "--seed", "7"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["replications"] == 5000
        assert 0.0 <= data["risk_ratio"] <= 1.0
        assert data["mean_system"] <= data["mean_single"]

    def test_chunk_size_is_bitwise_identical(self, capsys, model_file):
        assert main(["simulate", "--model", model_file, "--replications", "4000", "--seed", "3"]) == 0
        monolithic = json.loads(capsys.readouterr().out)
        assert main([
            "simulate", "--model", model_file, "--replications", "4000", "--seed", "3",
            "--chunk-size", "257",
        ]) == 0
        chunked = json.loads(capsys.readouterr().out)
        assert monolithic == chunked

    def test_stream_mode(self, capsys):
        assert main([
            "simulate", "--scenario", "high-quality", "--replications", "2000",
            "--seed", "5", "--stream", "--chunk-size", "500",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["replications"] == 2000
        assert 0.0 <= data["risk_ratio"] <= 1.0

    def test_rejects_bad_replications_with_exit_code(self, model_file, capsys):
        assert main(["simulate", "--model", model_file, "--replications", "0"]) == 2
        assert "error:" in capsys.readouterr().err


class TestErrorPaths:
    """Bad input must exit 2 with a one-line message, not a traceback."""

    def test_missing_model_file(self, capsys):
        assert main(["assess", "--model", "/no/such/model.json"]) == 2
        error = capsys.readouterr().err
        assert "error:" in error and "model.json" in error

    def test_malformed_model_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not valid json", encoding="utf-8")
        assert main(["gain", "--model", str(path)]) == 2
        error = capsys.readouterr().err
        assert "error:" in error and "not valid JSON" in error

    def test_invalid_model_content(self, tmp_path, capsys):
        path = tmp_path / "invalid.json"
        path.write_text(json.dumps({"p": [2.0], "q": [0.1]}), encoding="utf-8")
        assert main(["assess", "--model", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_model_missing_required_key(self, tmp_path, capsys):
        path = tmp_path / "incomplete.json"
        path.write_text(json.dumps({"p": [0.05]}), encoding="utf-8")  # no "q"
        assert main(["assess", "--model", str(path)]) == 2
        error = capsys.readouterr().err
        assert "error:" in error and "'q'" in error

    def test_model_wrong_json_shape(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[0.05, 0.02]", encoding="utf-8")  # valid JSON, not a dict
        assert main(["gain", "--model", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_model_and_scenario_mutually_exclusive_exit_code(self, model_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["assess", "--model", model_file, "--scenario", "high-quality"])
        assert excinfo.value.code == 2

    def test_unknown_command_exit_code(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2


class TestStudyCommand:
    @pytest.fixture
    def spec_file(self, tmp_path) -> str:
        spec = {
            "name": "cli-study",
            "base": {"scenario": "many-small-faults"},
            "sweep": {"grid": [{"name": "n", "values": [10, 20]}]},
            "methods": [{"name": "moments"}, {"name": "bounds"}],
            "seed": 3,
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        return str(path)

    def test_show_prints_plan(self, spec_file, capsys):
        assert main(["study", "show", spec_file]) == 0
        output = capsys.readouterr().out
        assert "cli-study" in output
        assert "points:      4" in output
        assert "moments" in output and "bounds" in output

    def test_run_writes_tables_and_uses_cache(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        output_dir = str(tmp_path / "out")
        arguments = [
            "study", "run", spec_file,
            "--cache-dir", cache_dir, "--output-dir", output_dir, "--quiet",
        ]
        assert main(arguments) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["points"] == 4
        assert cold["computed"] == 4
        table = (tmp_path / "out" / "cli-study.csv").read_bytes()
        assert main(arguments) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["computed"] == 0
        assert warm["cached"] == 4
        assert (tmp_path / "out" / "cli-study.csv").read_bytes() == table
        rows = json.loads((tmp_path / "out" / "cli-study.json").read_text(encoding="utf-8"))
        assert len(rows) == 4

    def test_run_missing_spec(self, capsys):
        assert main(["study", "run", "/no/such/spec.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_malformed_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2", encoding="utf-8")
        assert main(["study", "run", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_wrong_shaped_spec(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")  # valid JSON, not an object
        assert main(["study", "run", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_rejects_unknown_format(self, spec_file, capsys):
        assert main(["study", "run", spec_file, "--formats", "parquet", "--quiet"]) == 2
        assert "parquet" in capsys.readouterr().err

    def test_run_rejects_empty_formats(self, spec_file, capsys):
        assert main(["study", "run", spec_file, "--formats", " , ", "--quiet"]) == 2
        assert "no table format" in capsys.readouterr().err

    @pytest.fixture
    def flaky_spec_file(self, tmp_path) -> str:
        # p_scale=50 pushes probabilities above 1 at evaluation time: one
        # deterministically failing point among healthy siblings.
        spec = {
            "name": "cli-keep-going",
            "base": {"scenario": "many-small-faults"},
            "sweep": {"grid": [{"name": "p_scale", "values": [1.0, 50.0]}]},
            "methods": [{"name": "moments"}],
            "seed": 3,
        }
        path = tmp_path / "flaky.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        return str(path)

    def test_failing_point_aborts_without_keep_going(self, flaky_spec_file, tmp_path, capsys):
        assert main([
            "study", "run", flaky_spec_file,
            "--output-dir", str(tmp_path / "out"), "--quiet",
        ]) == 2
        assert "evaluation(s) failed" in capsys.readouterr().err

    def test_keep_going_writes_typed_error_rows(self, flaky_spec_file, tmp_path, capsys):
        assert main([
            "study", "run", flaky_spec_file, "--keep-going",
            "--output-dir", str(tmp_path / "out"), "--quiet",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["keep_going"] is True
        assert summary["failed"] == 1
        rows = json.loads(
            (tmp_path / "out" / "cli-keep-going.json").read_text(encoding="utf-8")
        )
        assert len(rows) == 2
        failed = [row for row in rows if row.get("status") == "error"]
        assert len(failed) == 1
        assert failed[0]["error_type"] == "ValueError"

    def test_run_without_cache(self, spec_file, tmp_path, capsys):
        assert main([
            "study", "run", spec_file, "--cache-dir", "none",
            "--output-dir", str(tmp_path / "out"), "--quiet",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["cache_dir"] is None


class TestMethodsCommand:
    def test_lists_every_registered_method_with_schema(self, capsys):
        from repro.api import default_registry

        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for definition in default_registry():
            assert definition.name in output
            for option in definition.options:
                assert f"--set {option.name}=" in output

    def test_tail_quantile_is_listed(self, capsys):
        assert main(["methods"]) == 0
        assert "tail-quantile" in capsys.readouterr().out


class TestEvaluateCommand:
    def test_runs_a_registered_method(self, capsys, model_file):
        assert main([
            "evaluate", "--model", model_file, "--method", "moments",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["method"] == "moments"
        assert data["options"] == {"versions": 2}
        assert data["metrics"]["mean_system"] <= data["metrics"]["mean_single"]
        assert data["seed_entropy"] is None

    def test_tail_quantile_from_the_cli(self, capsys):
        assert main([
            "evaluate", "--scenario", "high-quality", "--method", "tail-quantile",
            "--set", "level=0.999", "--set", "threshold=1e-4",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["options"]["level"] == 0.999
        assert 0.0 <= data["metrics"]["tail_exceedance"] <= 1.0

    def test_montecarlo_seed_is_reproducible(self, capsys, model_file):
        arguments = [
            "evaluate", "--model", model_file, "--method", "montecarlo",
            "--set", "replications=2000", "--seed", "7",
        ]
        assert main(arguments) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(arguments) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["metrics"] == second["metrics"]
        assert first["seed_entropy"] == [7]

    def test_null_option_value_parses(self, capsys):
        assert main([
            "evaluate", "--scenario", "high-quality", "--method", "exact",
            "--set", "max_support=null",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["options"]["max_support"] is None

    def test_unknown_method_exits_2(self, capsys, model_file):
        assert main(["evaluate", "--model", model_file, "--method", "frobnicate"]) == 2
        error = capsys.readouterr().err
        assert "error:" in error and "unknown method" in error
        assert error.strip().count("\n") == 0  # one line, no traceback

    def test_unknown_option_exits_2(self, capsys, model_file):
        assert main([
            "evaluate", "--model", model_file, "--method", "moments", "--set", "bogus=1",
        ]) == 2
        assert "does not accept option" in capsys.readouterr().err

    def test_wrong_option_type_exits_2(self, capsys, model_file):
        assert main([
            "evaluate", "--model", model_file, "--method", "exact", "--set", "level=high",
        ]) == 2
        assert "expects float" in capsys.readouterr().err

    def test_malformed_assignment_exits_2(self, capsys, model_file):
        assert main([
            "evaluate", "--model", model_file, "--method", "moments", "--set", "versions",
        ]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_malformed_model_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["evaluate", "--model", str(path), "--method", "moments"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_reserved_looking_option_name_exits_2_not_traceback(self, capsys, model_file):
        # "seed" collides with evaluate()'s own parameter; it must surface as
        # the registry's unknown-option error, not a TypeError traceback.
        assert main([
            "evaluate", "--model", model_file, "--method", "moments", "--set", "seed=5",
        ]) == 2
        assert "does not accept option 'seed'" in capsys.readouterr().err


class TestSimulateDeprecationShim:
    def test_emits_deprecation_warning_and_stderr_note(self, capsys, model_file):
        with pytest.warns(DeprecationWarning, match="legacy alias"):
            assert main([
                "simulate", "--model", model_file, "--replications", "1000", "--seed", "7",
            ]) == 0
        captured = capsys.readouterr()
        assert "legacy alias" in captured.err
        assert "evaluate --method montecarlo" in captured.err
        json.loads(captured.out)  # stdout stays pure JSON for consumers


class TestCacheCommand:
    @pytest.fixture
    def warm_cache(self, tmp_path) -> str:
        from repro.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        for index in range(3):
            digest = f"{index:02x}" + "ab" * 31
            cache.store(digest, {"digest": digest, "payload": {}, "metrics": {"v": index}})
        return str(tmp_path / "cache")

    def test_info_reports_entries_bytes_and_path(self, warm_cache, capsys):
        assert main(["cache", "info", "--cache-dir", warm_cache]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["entries"] == 3
        assert data["bytes"] > 0
        assert data["exists"] is True
        assert data["path"].endswith("cache")

    def test_info_on_missing_directory_does_not_create_it(self, tmp_path, capsys):
        target = tmp_path / "never-created"
        assert main(["cache", "info", "--cache-dir", str(target)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == {
            "path": str(target.resolve()), "entries": 0, "bytes": 0, "exists": False,
        }
        assert not target.exists()

    def test_clear_refused_without_yes(self, warm_cache, capsys):
        assert main(["cache", "clear", "--cache-dir", warm_cache]) == 2
        error = capsys.readouterr().err
        assert "refusing" in error and "--yes" in error and "3" in error
        assert main(["cache", "info", "--cache-dir", warm_cache]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 3

    def test_clear_with_yes_removes_entries(self, warm_cache, capsys):
        assert main(["cache", "clear", "--cache-dir", warm_cache, "--yes"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 3
        assert main(["cache", "info", "--cache-dir", warm_cache]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_clear_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["cache", "clear", "--cache-dir", str(tmp_path / "nope"), "--yes"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_cache_dir_that_is_a_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "file.json"
        path.write_text("{}", encoding="utf-8")
        assert main(["cache", "info", "--cache-dir", str(path)]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_clear_leaves_foreign_files_alone(self, warm_cache, tmp_path, capsys):
        from pathlib import Path

        foreign = Path(warm_cache) / "README.txt"
        foreign.write_text("not a cache entry", encoding="utf-8")
        assert main(["cache", "clear", "--cache-dir", warm_cache, "--yes"]) == 0
        assert foreign.exists()


class TestServeCommand:
    """Argument validation: bad input exits 2 before any socket is bound."""

    def test_bad_port_exits_2(self, capsys):
        assert main(["serve", "--port", "0"]) == 2
        assert "port must be in 1..65535" in capsys.readouterr().err
        assert main(["serve", "--port", "70000"]) == 2
        assert "port" in capsys.readouterr().err

    def test_negative_workers_exits_2(self, capsys):
        assert main(["serve", "--port", "18099", "--workers", "-1"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_negative_window_exits_2(self, capsys):
        assert main(["serve", "--port", "18099", "--batch-window-ms", "-5"]) == 2
        assert "batch_window_ms" in capsys.readouterr().err

    def test_bad_lru_size_exits_2(self, capsys):
        assert main(["serve", "--port", "18099", "--lru-size", "0"]) == 2
        assert "max_entries" in capsys.readouterr().err

    def test_bad_max_inflight_exits_2(self, capsys):
        assert main(["serve", "--port", "18099", "--max-inflight", "0"]) == 2
        assert "max_inflight" in capsys.readouterr().err

    def test_bad_max_queue_exits_2(self, capsys):
        assert main(["serve", "--port", "18099", "--max-queue", "-1"]) == 2
        assert "max_queue" in capsys.readouterr().err

    def test_negative_request_timeout_exits_2(self, capsys):
        assert main(["serve", "--port", "18099", "--request-timeout-ms", "-5"]) == 2
        assert "--request-timeout-ms must be >= 0" in capsys.readouterr().err

    def test_occupied_port_exits_2(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            blocker.close()
