"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.fault_model import FaultModel


@pytest.fixture
def model_file(tmp_path, small_model: FaultModel) -> str:
    path = tmp_path / "model.json"
    path.write_text(json.dumps(small_model.to_dict()), encoding="utf-8")
    return str(path)


class TestScenariosCommand:
    def test_lists_builtin_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "high-quality" in output
        assert "many-small-faults" in output


class TestPmaxTableCommand:
    def test_default_table(self, capsys):
        assert main(["pmax-table"]) == 0
        output = capsys.readouterr().out
        assert "0.866" in output
        assert "0.3317" in output or "0.332" in output

    def test_custom_values(self, capsys):
        assert main(["pmax-table", "0.2"]) == 0
        output = capsys.readouterr().out
        assert f"{np.sqrt(0.2 * 1.2):.4f}" in output


class TestAssessCommand:
    def test_text_report_from_file(self, capsys, model_file):
        assert main(["assess", "--model", model_file]) == 0
        output = capsys.readouterr().out
        assert "Gain from diversity" in output

    def test_json_report_from_scenario(self, capsys):
        assert main(["assess", "--scenario", "high-quality", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["fault_count"] == 5
        assert data["one_out_of_two"]["mean_pfd"] < data["single_version"]["mean_pfd"]

    def test_custom_confidence(self, capsys, model_file):
        assert main(["assess", "--model", model_file, "--confidence", "0.9", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["confidence"] == 0.9

    def test_model_and_scenario_mutually_exclusive(self, model_file):
        with pytest.raises(SystemExit):
            main(["assess", "--model", model_file, "--scenario", "high-quality"])

    def test_requires_a_model_source(self):
        with pytest.raises(SystemExit):
            main(["assess"])


class TestGainCommand:
    def test_gain_json(self, capsys, model_file):
        assert main(["gain", "--model", model_file]) == 0
        data = json.loads(capsys.readouterr().out)
        assert 0.0 <= data["risk_ratio"] <= 1.0
        assert data["mean_ratio"] <= data["guaranteed_mean_ratio"] + 1e-12


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "pmax-table", "0.01"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "0.1005" in completed.stdout


class TestSimulateCommand:
    def test_simulate_json_summary(self, capsys, model_file):
        assert main(["simulate", "--model", model_file, "--replications", "5000", "--seed", "7"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["replications"] == 5000
        assert 0.0 <= data["risk_ratio"] <= 1.0
        assert data["mean_system"] <= data["mean_single"]

    def test_chunk_size_is_bitwise_identical(self, capsys, model_file):
        assert main(["simulate", "--model", model_file, "--replications", "4000", "--seed", "3"]) == 0
        monolithic = json.loads(capsys.readouterr().out)
        assert main([
            "simulate", "--model", model_file, "--replications", "4000", "--seed", "3",
            "--chunk-size", "257",
        ]) == 0
        chunked = json.loads(capsys.readouterr().out)
        assert monolithic == chunked

    def test_stream_mode(self, capsys):
        assert main([
            "simulate", "--scenario", "high-quality", "--replications", "2000",
            "--seed", "5", "--stream", "--chunk-size", "500",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["replications"] == 2000
        assert 0.0 <= data["risk_ratio"] <= 1.0

    def test_rejects_bad_replications(self, model_file):
        with pytest.raises(ValueError):
            main(["simulate", "--model", model_file, "--replications", "0"])
