"""Tests for Monte Carlo result containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.montecarlo.results import PairSimulationResult, SimulationResult
from repro.stats.empirical import EmpiricalDistribution


def _result(pfds: np.ndarray, counts: np.ndarray) -> SimulationResult:
    return SimulationResult(
        pfds=EmpiricalDistribution(pfds),
        fault_counts=EmpiricalDistribution(counts),
        replications=len(pfds),
    )


class TestSimulationResult:
    def test_basic_statistics(self):
        result = _result(np.array([0.0, 0.1, 0.2, 0.3]), np.array([0.0, 1.0, 1.0, 2.0]))
        assert result.mean_pfd() == pytest.approx(0.15)
        assert result.prob_any_fault() == pytest.approx(0.75)
        assert result.prob_pfd_exceeds(0.15) == pytest.approx(0.5)
        assert result.pfd_percentile(0.99) == pytest.approx(0.3)

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        pfds = rng.random(1000) * 0.01
        result = _result(pfds, np.ones(1000))
        low, high = result.mean_pfd_confidence_interval()
        assert low < result.mean_pfd() < high


class TestPairSimulationResult:
    @pytest.fixture
    def paired(self) -> PairSimulationResult:
        single = _result(np.array([0.0, 0.2, 0.4, 0.4]), np.array([0.0, 1.0, 2.0, 2.0]))
        system = _result(np.array([0.0, 0.0, 0.2, 0.2]), np.array([0.0, 0.0, 1.0, 1.0]))
        return PairSimulationResult(single=single, system=system)

    def test_ratios(self, paired: PairSimulationResult):
        assert paired.mean_ratio() == pytest.approx(0.1 / 0.25)
        assert paired.risk_ratio() == pytest.approx((0.5) / (0.75))
        assert 0.0 < paired.std_ratio() < 1.0
        assert 0.0 < paired.bound_ratio(1.0) < 1.0

    def test_degenerate_zero_denominators(self):
        zeros = _result(np.zeros(4), np.zeros(4))
        paired = PairSimulationResult(single=zeros, system=zeros)
        assert paired.mean_ratio() == 1.0
        assert paired.std_ratio() == 1.0
        assert paired.risk_ratio() == 1.0
        assert paired.bound_ratio(2.0) == 1.0

    def test_summary(self, paired: PairSimulationResult):
        summary = paired.summary()
        assert summary["replications"] == 4
        assert summary["mean_ratio"] == paired.mean_ratio()
