"""Tests for convergence diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.montecarlo.convergence import (
    ConvergenceDiagnostics,
    batch_means_standard_error,
    running_mean,
)


class TestRunningMean:
    def test_values(self):
        np.testing.assert_allclose(
            running_mean(np.array([1.0, 3.0, 5.0])), [1.0, 2.0, 3.0]
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            running_mean(np.array([]))

    def test_converges_to_sample_mean(self):
        samples = np.random.default_rng(0).random(1000)
        assert running_mean(samples)[-1] == pytest.approx(samples.mean())


class TestBatchMeans:
    def test_iid_batch_se_close_to_naive(self):
        samples = np.random.default_rng(1).normal(size=10_000)
        naive = samples.std(ddof=1) / np.sqrt(samples.size)
        batched = batch_means_standard_error(samples, batches=20)
        assert batched == pytest.approx(naive, rel=0.5)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            batch_means_standard_error(np.array([]), 10)
        with pytest.raises(ValueError):
            batch_means_standard_error(np.arange(100, dtype=float), 1)
        with pytest.raises(ValueError):
            batch_means_standard_error(np.arange(5, dtype=float), 10)


class TestDiagnostics:
    def test_from_samples(self):
        samples = np.random.default_rng(2).normal(10.0, 1.0, size=5000)
        diagnostics = ConvergenceDiagnostics.from_samples(samples)
        assert diagnostics.mean == pytest.approx(10.0, abs=0.1)
        assert diagnostics.sample_size == 5000
        assert diagnostics.is_converged(relative_tolerance=0.05)

    def test_not_converged_for_small_noisy_sample(self):
        samples = np.random.default_rng(3).normal(0.001, 1.0, size=10)
        diagnostics = ConvergenceDiagnostics.from_samples(samples, batches=2)
        assert not diagnostics.is_converged(relative_tolerance=0.01)

    def test_zero_mean_relative_width_infinite(self):
        samples = np.array([-1.0, 1.0, -1.0, 1.0])
        diagnostics = ConvergenceDiagnostics.from_samples(samples, batches=2)
        assert diagnostics.relative_half_width == float("inf")

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            ConvergenceDiagnostics.from_samples(np.array([1.0]))
