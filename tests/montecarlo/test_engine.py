"""Tests for the Monte Carlo engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.no_common_faults import prob_any_common_fault, prob_any_fault, risk_ratio
from repro.montecarlo.engine import MonteCarloEngine
from repro.versions.correlated import CopulaDevelopmentProcess
from repro.versions.generation import IndependentDevelopmentProcess


@pytest.fixture
def model() -> FaultModel:
    return FaultModel(p=np.array([0.3, 0.15, 0.05]), q=np.array([0.05, 0.1, 0.2]))


class TestConstruction:
    def test_default_process_is_independent(self, model: FaultModel):
        engine = MonteCarloEngine(model)
        assert isinstance(engine.process, IndependentDevelopmentProcess)
        assert engine.process.model is model

    def test_custom_process(self, model: FaultModel):
        process = CopulaDevelopmentProcess(model, correlation=0.3)
        engine = MonteCarloEngine(model, process=process)
        assert engine.process is process

    def test_rejects_mismatched_process(self, model: FaultModel):
        other = FaultModel(p=np.array([0.1]), q=np.array([0.1]))
        with pytest.raises(ValueError):
            MonteCarloEngine(model, process=IndependentDevelopmentProcess(other))


class TestSimulations:
    def test_single_version_statistics(self, model: FaultModel):
        engine = MonteCarloEngine(model)
        result = engine.simulate_single_versions(100_000, rng=0)
        moments = pfd_moments(model, 1)
        assert result.mean_pfd() == pytest.approx(moments.mean, rel=0.02)
        assert result.std_pfd() == pytest.approx(moments.std, rel=0.03)
        assert result.prob_any_fault() == pytest.approx(prob_any_fault(model), abs=0.01)
        assert result.replications == 100_000

    def test_system_statistics(self, model: FaultModel):
        engine = MonteCarloEngine(model)
        result = engine.simulate_systems(100_000, versions=2, rng=1)
        moments = pfd_moments(model, 2)
        assert result.mean_pfd() == pytest.approx(moments.mean, rel=0.05)
        assert result.prob_any_fault() == pytest.approx(prob_any_common_fault(model), abs=0.01)

    def test_three_version_system(self, model: FaultModel):
        engine = MonteCarloEngine(model)
        result = engine.simulate_systems(100_000, versions=3, rng=2)
        assert result.mean_pfd() == pytest.approx(pfd_moments(model, 3).mean, rel=0.15)

    def test_rejects_bad_arguments(self, model: FaultModel):
        engine = MonteCarloEngine(model)
        with pytest.raises(ValueError):
            engine.simulate_single_versions(0)
        with pytest.raises(ValueError):
            engine.simulate_systems(100, versions=0)

    def test_reproducibility(self, model: FaultModel):
        engine = MonteCarloEngine(model)
        first = engine.simulate_single_versions(1000, rng=7)
        second = engine.simulate_single_versions(1000, rng=7)
        assert first.mean_pfd() == second.mean_pfd()


class TestPairedSimulation:
    def test_paired_ratios(self, model: FaultModel):
        engine = MonteCarloEngine(model)
        result = engine.simulate_paired(100_000, rng=3)
        assert result.risk_ratio() == pytest.approx(risk_ratio(model), abs=0.02)
        analytic_mean_ratio = pfd_moments(model, 2).mean / pfd_moments(model, 1).mean
        assert result.mean_ratio() == pytest.approx(analytic_mean_ratio, rel=0.1)
        assert result.std_ratio() < 1.0

    def test_summary_keys(self, model: FaultModel):
        result = MonteCarloEngine(model).simulate_paired(1000, rng=4)
        summary = result.summary()
        for key in ("mean_single", "mean_system", "risk_ratio", "replications"):
            assert key in summary

    def test_bound_ratio(self, model: FaultModel):
        result = MonteCarloEngine(model).simulate_paired(50_000, rng=5)
        assert 0.0 < result.bound_ratio(2.33) < 1.0


class TestComparison:
    def test_compare_with_analytic_structure(self, model: FaultModel):
        comparison = MonteCarloEngine(model).compare_with_analytic(20_000, rng=6)
        assert comparison["replications"] == 20_000
        for key in ("mean_single", "mean_system", "prob_any_fault", "prob_any_common_fault"):
            entry = comparison[key]
            assert "analytic" in entry and "simulated" in entry

    def test_compare_with_analytic_agreement(self, model: FaultModel):
        comparison = MonteCarloEngine(model).compare_with_analytic(100_000, rng=8)
        mean_single = comparison["mean_single"]
        assert mean_single["simulated"] == pytest.approx(
            mean_single["analytic"], abs=5 * mean_single["standard_error"]
        )
