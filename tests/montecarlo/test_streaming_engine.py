"""Tests for the streaming and parallel execution paths of the engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.montecarlo.engine import MonteCarloEngine, _shard_sizes
from repro.montecarlo.streaming import StreamingPairResult, StreamingSimulationResult


@pytest.fixture
def model() -> FaultModel:
    return FaultModel(p=np.array([0.3, 0.15, 0.05]), q=np.array([0.05, 0.1, 0.2]))


class TestConstructionValidation:
    def test_rejects_bad_chunk_size(self, model):
        with pytest.raises(ValueError):
            MonteCarloEngine(model, chunk_size=0)

    def test_rejects_bad_jobs(self, model):
        with pytest.raises(ValueError):
            MonteCarloEngine(model, jobs=0)

    def test_process_defaults_without_type_ignore(self, model):
        # ``process`` is a genuine Optional field now; passing None explicitly
        # behaves exactly like omitting it.
        engine = MonteCarloEngine(model, process=None)
        assert engine.process is not None
        assert engine.process.model is model


class TestStreamingSimulations:
    def test_single_streaming_statistics(self, model):
        engine = MonteCarloEngine(model, chunk_size=10_000)
        result = engine.simulate_single_streaming(100_000, rng=0)
        assert isinstance(result, StreamingSimulationResult)
        moments = pfd_moments(model, 1)
        assert result.mean_pfd() == pytest.approx(moments.mean, rel=0.02)
        assert result.std_pfd() == pytest.approx(moments.std, rel=0.03)
        assert result.replications == 100_000
        assert result.pfds.count == 100_000

    def test_paired_streaming_ratios(self, model):
        from repro.core.no_common_faults import risk_ratio

        engine = MonteCarloEngine(model, chunk_size=25_000)
        result = engine.simulate_paired_streaming(100_000, rng=3)
        assert isinstance(result, StreamingPairResult)
        assert result.risk_ratio() == pytest.approx(risk_ratio(model), abs=0.02)
        assert result.std_ratio() < 1.0
        summary = result.summary()
        for key in ("mean_single", "mean_system", "risk_ratio", "replications"):
            assert key in summary

    def test_systems_streaming(self, model):
        engine = MonteCarloEngine(model, chunk_size=10_000)
        result = engine.simulate_systems_streaming(50_000, versions=3, rng=2)
        assert result.mean_pfd() == pytest.approx(pfd_moments(model, 3).mean, rel=0.2)

    def test_streaming_percentiles_bracket_samples(self, model):
        engine = MonteCarloEngine(model)
        streamed = engine.simulate_single_streaming(50_000, rng=5)
        sampled = engine.simulate_single_versions(50_000, rng=5)
        # Histogram quantiles resolve to one bin; the bin width is
        # total_impact / bins.
        bin_width = model.total_impact / 4096
        assert streamed.pfd_percentile(0.9) == pytest.approx(
            sampled.pfd_percentile(0.9), abs=2 * bin_width
        )

    def test_confidence_interval_contains_analytic_mean(self, model):
        engine = MonteCarloEngine(model, chunk_size=10_000)
        result = engine.simulate_single_streaming(200_000, rng=8)
        low, high = result.mean_pfd_confidence_interval(0.999)
        assert low <= pfd_moments(model, 1).mean <= high

    def test_rejects_bad_arguments(self, model):
        engine = MonteCarloEngine(model)
        with pytest.raises(ValueError):
            engine.simulate_single_streaming(0)
        with pytest.raises(ValueError):
            engine.simulate_systems_streaming(100, versions=0)


class TestParallelExecution:
    def test_shard_sizes_cover_replications(self):
        assert _shard_sizes(10, 3) == [4, 3, 3]
        assert _shard_sizes(2, 8) == [1, 1]
        assert sum(_shard_sizes(1_000_003, 7)) == 1_000_003

    def test_parallel_deterministic_and_statistically_consistent(self, model):
        engine = MonteCarloEngine(model, jobs=2)
        first = engine.simulate_paired(30_000, rng=4)
        second = engine.simulate_paired(30_000, rng=4)
        assert np.array_equal(first.single.pfds.samples, second.single.pfds.samples)
        assert np.array_equal(first.system.pfds.samples, second.system.pfds.samples)
        moments = pfd_moments(model, 1)
        assert first.single.mean_pfd() == pytest.approx(moments.mean, rel=0.05)

    def test_parallel_streaming_merges_all_shards(self, model):
        engine = MonteCarloEngine(model, jobs=2)
        result = engine.simulate_single_streaming(30_001, rng=6)
        assert result.pfds.count == 30_001
        assert result.mean_pfd() == pytest.approx(pfd_moments(model, 1).mean, rel=0.05)

    def test_parallel_falls_back_to_sequential_for_tiny_runs(self, model):
        # Fewer replications than 2*jobs run in-process (and bitwise match the
        # sequential path).
        parallel = MonteCarloEngine(model, jobs=8).simulate_single_versions(10, rng=9)
        sequential = MonteCarloEngine(model).simulate_single_versions(10, rng=9)
        assert np.array_equal(parallel.pfds.samples, sequential.pfds.samples)
