"""Tests for the synthetic Knight-Leveson-style experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.experiments.knight_leveson import (
    KNIGHT_LEVESON_VERSION_COUNT,
    SyntheticNVersionExperiment,
)
from repro.versions.correlated import CopulaDevelopmentProcess


@pytest.fixture
def model() -> FaultModel:
    # Moderate fault probabilities so a 27-version experiment sees plenty of
    # faults and common faults.
    return FaultModel(
        p=np.array([0.3, 0.2, 0.15, 0.1, 0.05]),
        q=np.array([0.02, 0.05, 0.01, 0.1, 0.03]),
    )


class TestExperiment:
    def test_default_version_count_matches_knight_leveson(self, model: FaultModel):
        assert SyntheticNVersionExperiment(model).version_count == KNIGHT_LEVESON_VERSION_COUNT == 27

    def test_pair_count_is_all_pairs(self, model: FaultModel):
        result = SyntheticNVersionExperiment(model, version_count=10).run(rng=0)
        assert result.pair_count == 45
        assert result.single_pfds.size == 10
        assert result.pair_pfds.size == 45

    def test_rejects_too_few_versions(self, model: FaultModel):
        with pytest.raises(ValueError):
            SyntheticNVersionExperiment(model, version_count=1)

    def test_reproducible_with_seed(self, model: FaultModel):
        experiment = SyntheticNVersionExperiment(model)
        first = experiment.run(rng=5).summary()
        second = experiment.run(rng=5).summary()
        assert first == second

    def test_qualitative_section7_claim(self, model: FaultModel):
        # "diversity reduced not only the sample mean of the PFD ... but also
        # - greatly - its standard deviation".
        result = SyntheticNVersionExperiment(model).run(rng=1)
        assert result.diversity_reduced_mean()
        assert result.diversity_reduced_std()
        assert result.mean_reduction_factor() >= 1.0
        assert result.std_reduction_factor() >= 1.0

    def test_expected_statistics_match_model(self, model: FaultModel):
        from repro.core.moments import pfd_moments

        expected = SyntheticNVersionExperiment(model).expected_statistics()
        assert expected["single_mean"] == pytest.approx(pfd_moments(model, 1).mean)
        assert expected["pair_std"] == pytest.approx(pfd_moments(model, 2).std)

    def test_sample_statistics_converge_to_expected(self, model: FaultModel):
        # With many versions the sample statistics approach the analytic ones.
        experiment = SyntheticNVersionExperiment(model, version_count=400)
        result = experiment.run(rng=2)
        expected = experiment.expected_statistics()
        assert result.single_pfds.mean() == pytest.approx(expected["single_mean"], rel=0.1)
        assert result.single_pfds.std() == pytest.approx(expected["single_std"], rel=0.15)

    def test_replicated_runs_are_independent(self, model: FaultModel):
        experiment = SyntheticNVersionExperiment(model, version_count=10)
        results = experiment.run_replicated(3, rng=3)
        assert len(results) == 3
        means = {result.single_pfds.mean() for result in results}
        assert len(means) > 1

    def test_replicated_rejects_bad_count(self, model: FaultModel):
        with pytest.raises(ValueError):
            SyntheticNVersionExperiment(model).run_replicated(0)

    def test_custom_development_process(self, model: FaultModel):
        process = CopulaDevelopmentProcess(model, correlation=0.5)
        experiment = SyntheticNVersionExperiment(model, version_count=8, process=process)
        result = experiment.run(rng=4)
        assert result.version_count == 8
