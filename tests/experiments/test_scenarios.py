"""Tests for the canonical scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.moments import expected_fault_count
from repro.demandspace.space import ContinuousDemandSpace
from repro.core.fault_model import FaultModel
from repro.experiments.scenarios import (
    SCENARIOS,
    fig2_failure_regions,
    get_scenario,
    high_quality_scenario,
    many_small_faults_scenario,
    protection_system_model,
    protection_system_scenario,
    scenario_names,
)


class TestHighQualityScenario:
    def test_regime_characteristics(self):
        model = high_quality_scenario()
        assert model.n == 5
        # Section 4 regime: the expected fault count per version is well below 1.
        assert expected_fault_count(model, 1) < 0.2
        assert model.p_max <= 0.05


class TestManySmallFaultsScenario:
    def test_regime_characteristics(self):
        model = many_small_faults_scenario(n=150)
        assert model.n == 150
        assert model.p_max <= 0.08 + 1e-12
        assert model.q.sum() == pytest.approx(0.3)
        # Section 5 regime: many faults expected per version.
        assert expected_fault_count(model, 1) > 1.0

    def test_reproducible_by_seed(self):
        np.testing.assert_allclose(
            many_small_faults_scenario(50, rng=3).p, many_small_faults_scenario(50, rng=3).p
        )


class TestFig2Regions:
    def test_default_layout(self):
        regions = fig2_failure_regions()
        assert len(regions) == 5
        demands = np.array([[0.25, 0.3], [0.47, 0.5], [0.99, 0.99]])
        memberships = [region.contains(demands) for region in regions]
        # First demand sits inside the first blob, second inside the stripe.
        assert memberships[0][0]
        assert memberships[2][1]

    def test_rejects_non_two_dimensional_space(self):
        with pytest.raises(ValueError):
            fig2_failure_regions(ContinuousDemandSpace.unit_cube(3))

    def test_scaled_space(self):
        space = ContinuousDemandSpace(np.array([0.0, 100.0]), np.array([10.0, 200.0]))
        regions = fig2_failure_regions(space)
        centre_demand = np.array([[2.5, 130.0]])  # scaled equivalent of (0.25, 0.3)
        assert regions[0].contains(centre_demand)[0]


class TestProtectionSystemScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return protection_system_scenario(rng=11)

    def test_structure(self, scenario):
        assert scenario.n == 6
        assert scenario.model.n == len(scenario.regions)
        assert scenario.space.dimension == 2
        assert scenario.space.names == ("pressure_bar", "temperature_c")

    def test_impacts_consistent_with_geometry(self, scenario, rng):
        # The model's q_i should match fresh Monte Carlo estimates of the
        # region probabilities under the profile.
        from repro.demandspace.measure import estimate_region_probability

        for index, region in enumerate(scenario.regions):
            estimate = estimate_region_probability(region, scenario.profile, rng, 40_000)
            assert scenario.model.q[index] == pytest.approx(
                estimate.value, abs=max(6 * estimate.standard_error, 2e-3)
            )

    def test_demands_stay_in_space(self, scenario, rng):
        demands = scenario.profile.sample(rng, 2_000)
        assert np.all(scenario.space.contains(demands))

    def test_reproducibility(self):
        first = protection_system_scenario(rng=11)
        second = protection_system_scenario(rng=11)
        np.testing.assert_allclose(first.model.q, second.model.q)


class TestScenarioRegistry:
    def test_every_entry_is_documented(self):
        assert scenario_names() == tuple(sorted(SCENARIOS))
        for name, entry in SCENARIOS.items():
            assert entry.name == name
            assert len(entry.description) > 10

    def test_get_scenario_builds_fault_models(self):
        model = get_scenario("high-quality")
        assert isinstance(model, FaultModel)
        assert model.n == 5

    def test_get_scenario_passes_factory_overrides(self):
        model = get_scenario("many-small-faults", n=33, rng=9)
        assert model.n == 33
        np.testing.assert_allclose(model.p, many_small_faults_scenario(33, rng=9).p)

    def test_get_scenario_rejects_unknown_name_and_parameter(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")
        with pytest.raises(ValueError, match="does not accept"):
            get_scenario("high-quality", n=10)

    def test_protection_system_entry_is_plain_fault_model(self):
        scenario = protection_system_scenario(rng=11)
        model = protection_system_model(rng=11)
        assert isinstance(model, FaultModel)
        np.testing.assert_allclose(model.p, scenario.model.p)
        np.testing.assert_allclose(model.q, scenario.model.q)
