"""Tests for adjudicators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adjudication.adjudicators import (
    MOutOfNAdjudicator,
    OneOutOfNAdjudicator,
    UnanimityAdjudicator,
)


class TestOneOutOfN:
    def test_fails_only_when_all_channels_fail(self):
        adjudicator = OneOutOfNAdjudicator()
        failures = np.array(
            [[True, True], [True, False], [False, True], [False, False]]
        )
        np.testing.assert_array_equal(
            adjudicator.system_failures(failures), [True, False, False, False]
        )

    def test_single_demand_vector(self):
        adjudicator = OneOutOfNAdjudicator()
        assert adjudicator.system_failures(np.array([True, True]))[0]
        assert not adjudicator.system_failures(np.array([True, False]))[0]

    def test_three_channels(self):
        adjudicator = OneOutOfNAdjudicator()
        failures = np.array([[True, True, True], [True, True, False]])
        np.testing.assert_array_equal(adjudicator.system_failures(failures), [True, False])

    def test_rejects_empty_channels(self):
        with pytest.raises(ValueError):
            OneOutOfNAdjudicator().system_failures(np.zeros((3, 0), dtype=bool))


class TestUnanimity:
    def test_fails_when_any_channel_fails(self):
        adjudicator = UnanimityAdjudicator()
        failures = np.array([[True, False], [False, False]])
        np.testing.assert_array_equal(adjudicator.system_failures(failures), [True, False])


class TestMOutOfN:
    def test_two_out_of_three_voting(self):
        adjudicator = MOutOfNAdjudicator(required_correct=2, channels=3)
        failures = np.array(
            [
                [False, False, False],  # all correct -> success
                [True, False, False],  # 2 correct -> success
                [True, True, False],  # 1 correct -> failure
                [True, True, True],  # 0 correct -> failure
            ]
        )
        np.testing.assert_array_equal(
            adjudicator.system_failures(failures), [False, False, True, True]
        )

    def test_one_out_of_two_equivalence(self):
        moon = MOutOfNAdjudicator(required_correct=1, channels=2)
        oon = OneOutOfNAdjudicator()
        failures = np.array([[True, True], [True, False], [False, False]])
        np.testing.assert_array_equal(
            moon.system_failures(failures), oon.system_failures(failures)
        )

    def test_n_out_of_n_equivalence_to_unanimity(self):
        moon = MOutOfNAdjudicator(required_correct=2, channels=2)
        unanimity = UnanimityAdjudicator()
        failures = np.array([[True, False], [False, False], [True, True]])
        np.testing.assert_array_equal(
            moon.system_failures(failures), unanimity.system_failures(failures)
        )

    def test_rejects_wrong_channel_count(self):
        adjudicator = MOutOfNAdjudicator(required_correct=2, channels=3)
        with pytest.raises(ValueError):
            adjudicator.system_failures(np.array([[True, False]]))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MOutOfNAdjudicator(required_correct=0, channels=2)
        with pytest.raises(ValueError):
            MOutOfNAdjudicator(required_correct=3, channels=2)
        with pytest.raises(ValueError):
            MOutOfNAdjudicator(required_correct=1, channels=0)
