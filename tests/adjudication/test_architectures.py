"""Tests for the N-version system architecture simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adjudication.adjudicators import MOutOfNAdjudicator, OneOutOfNAdjudicator
from repro.adjudication.architectures import NVersionSystem
from repro.core.fault_model import FaultModel
from repro.demandspace.profiles import ProductProfile
from repro.demandspace.regions import BoxRegion
from repro.demandspace.space import ContinuousDemandSpace
from repro.versions.version import DevelopedVersion


@pytest.fixture
def geometry():
    """A two-fault model with disjoint box failure regions on the unit square."""
    space = ContinuousDemandSpace.unit_square()
    profile = ProductProfile.uniform(space)
    regions = [
        BoxRegion(np.array([0.0, 0.0]), np.array([0.2, 0.5])),  # q = 0.1
        BoxRegion(np.array([0.6, 0.0]), np.array([1.0, 0.5])),  # q = 0.2
    ]
    model = FaultModel(p=np.array([0.5, 0.5]), q=np.array([0.1, 0.2]))
    return model, regions, profile


class TestConstruction:
    def test_rejects_no_versions(self, geometry):
        model, regions, profile = geometry
        with pytest.raises(ValueError):
            NVersionSystem([], regions, profile)

    def test_rejects_region_count_mismatch(self, geometry):
        model, regions, profile = geometry
        version = DevelopedVersion(model, np.array([True, False]))
        with pytest.raises(ValueError):
            NVersionSystem([version], regions[:1], profile)

    def test_rejects_mixed_fault_populations(self, geometry):
        model, regions, profile = geometry
        other = FaultModel(p=np.array([0.5]), q=np.array([0.1]))
        with pytest.raises(ValueError):
            NVersionSystem(
                [
                    DevelopedVersion(model, np.array([True, False])),
                    DevelopedVersion(other, np.array([True])),
                ],
                regions,
                profile,
            )

    def test_properties(self, geometry):
        model, regions, profile = geometry
        version = DevelopedVersion(model, np.array([True, True]))
        system = NVersionSystem([version, version], regions, profile)
        assert system.channel_count == 2
        assert system.fault_count == 2


class TestAnalyticPfd:
    def test_common_fault_pfd(self, geometry):
        model, regions, profile = geometry
        channel_a = DevelopedVersion(model, np.array([True, True]))
        channel_b = DevelopedVersion(model, np.array([True, False]))
        system = NVersionSystem([channel_a, channel_b], regions, profile)
        np.testing.assert_array_equal(system.common_fault_indicator(), [True, False])
        assert system.analytic_system_pfd() == pytest.approx(0.1)

    def test_no_common_fault_gives_zero(self, geometry):
        model, regions, profile = geometry
        channel_a = DevelopedVersion(model, np.array([True, False]))
        channel_b = DevelopedVersion(model, np.array([False, True]))
        system = NVersionSystem([channel_a, channel_b], regions, profile)
        assert system.analytic_system_pfd() == 0.0

    def test_analytic_rejected_for_voting_adjudicator(self, geometry):
        model, regions, profile = geometry
        version = DevelopedVersion(model, np.array([True, False]))
        system = NVersionSystem(
            [version, version, version],
            regions,
            profile,
            adjudicator=MOutOfNAdjudicator(required_correct=2, channels=3),
        )
        with pytest.raises(ValueError):
            system.analytic_system_pfd()


class TestSimulation:
    def test_simulation_matches_analytic_pfd(self, geometry):
        model, regions, profile = geometry
        channel_a = DevelopedVersion(model, np.array([True, True]))
        channel_b = DevelopedVersion(model, np.array([True, False]))
        system = NVersionSystem([channel_a, channel_b], regions, profile)
        result = system.simulate(np.random.default_rng(0), demands=200_000)
        assert result.system_pfd_estimate == pytest.approx(
            system.analytic_system_pfd(), abs=4 * result.system_pfd_standard_error
        )

    def test_channel_pfd_estimates(self, geometry):
        model, regions, profile = geometry
        channel_a = DevelopedVersion(model, np.array([True, True]))
        channel_b = DevelopedVersion(model, np.array([False, True]))
        system = NVersionSystem([channel_a, channel_b], regions, profile)
        result = system.simulate(np.random.default_rng(1), demands=100_000)
        estimates = result.channel_pfd_estimates
        assert estimates[0] == pytest.approx(0.3, abs=0.01)
        assert estimates[1] == pytest.approx(0.2, abs=0.01)

    def test_single_channel_system(self, geometry):
        model, regions, profile = geometry
        version = DevelopedVersion(model, np.array([False, True]))
        system = NVersionSystem([version], regions, profile)
        result = system.simulate(np.random.default_rng(2), demands=50_000)
        assert result.system_pfd_estimate == pytest.approx(0.2, abs=0.01)

    def test_voting_adjudicator_simulation(self, geometry):
        model, regions, profile = geometry
        # Three channels; only one contains fault 1, so 2-out-of-3 never fails.
        faulty = DevelopedVersion(model, np.array([False, True]))
        clean = DevelopedVersion(model, np.array([False, False]))
        system = NVersionSystem(
            [faulty, clean, clean],
            regions,
            profile,
            adjudicator=MOutOfNAdjudicator(required_correct=2, channels=3),
        )
        result = system.simulate(np.random.default_rng(3), demands=20_000)
        assert result.system_failure_count == 0
        assert result.channel_failure_counts[0] > 0

    def test_simulation_rejects_bad_demand_count(self, geometry):
        model, regions, profile = geometry
        version = DevelopedVersion(model, np.array([True, False]))
        system = NVersionSystem([version], regions, profile)
        with pytest.raises(ValueError):
            system.simulate(np.random.default_rng(4), demands=0)

    def test_default_adjudicator_is_one_out_of_n(self, geometry):
        model, regions, profile = geometry
        version = DevelopedVersion(model, np.array([True, False]))
        system = NVersionSystem([version, version], regions, profile)
        assert isinstance(system.adjudicator, OneOutOfNAdjudicator)
