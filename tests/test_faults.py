"""Tests for the deterministic fault-injection registry."""

from __future__ import annotations

import os

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with nothing armed and no exported spec."""
    faults.clear()
    yield
    faults.clear()


class TestHit:
    def test_disarmed_hit_is_a_no_op(self):
        faults.hit("nowhere.registered")  # must not raise

    def test_armed_hit_raises_the_default_error(self):
        faults.inject("layer.op", export_env=False)
        with pytest.raises(faults.FaultInjected, match="failpoint 'layer.op' fired"):
            faults.hit("layer.op")

    def test_other_failpoints_stay_silent(self):
        faults.inject("layer.op", export_env=False)
        faults.hit("layer.other")  # armed name differs: no fire

    def test_custom_error_class_and_message(self):
        faults.inject("layer.op", error=ValueError, message="bad input", export_env=False)
        with pytest.raises(ValueError, match="bad input"):
            faults.hit("layer.op")

    def test_error_instance_carries_type_and_message(self):
        faults.inject("layer.op", error=OSError("disk gone"), export_env=False)
        with pytest.raises(OSError, match="disk gone"):
            faults.hit("layer.op")

    def test_error_name_resolves_builtins(self):
        faults.inject("layer.op", error="TimeoutError", export_env=False)
        with pytest.raises(TimeoutError):
            faults.hit("layer.op")


class TestSchedule:
    def test_every_fires_deterministically(self):
        faults.inject("layer.op", every=3, export_env=False)
        outcomes = []
        for _ in range(9):
            try:
                faults.hit("layer.op")
                outcomes.append("ok")
            except faults.FaultInjected:
                outcomes.append("fire")
        assert outcomes == ["ok", "ok", "fire"] * 3

    def test_times_bounds_the_firing(self):
        faults.inject("layer.op", times=2, export_env=False)
        fired = 0
        for _ in range(5):
            try:
                faults.hit("layer.op")
            except faults.FaultInjected:
                fired += 1
        assert fired == 2

    def test_reinjection_resets_the_counters(self):
        faults.inject("layer.op", times=1, export_env=False)
        with pytest.raises(faults.FaultInjected):
            faults.hit("layer.op")
        faults.hit("layer.op")  # exhausted
        faults.inject("layer.op", times=1, export_env=False)
        with pytest.raises(faults.FaultInjected):
            faults.hit("layer.op")

    def test_clear_one_leaves_the_rest_armed(self):
        faults.inject("layer.a", export_env=False)
        faults.inject("layer.b", export_env=False)
        faults.clear("layer.a")
        faults.hit("layer.a")
        with pytest.raises(faults.FaultInjected):
            faults.hit("layer.b")


class TestValidation:
    def test_rejects_bad_every_and_times(self):
        with pytest.raises(ValueError, match="every"):
            faults.inject("layer.op", every=0, export_env=False)
        with pytest.raises(ValueError, match="times"):
            faults.inject("layer.op", times=0, export_env=False)

    def test_rejects_a_non_exception_error(self):
        with pytest.raises(ValueError, match="exception class"):
            faults.inject("layer.op", error=42, export_env=False)

    def test_rejects_an_unknown_error_name(self):
        with pytest.raises(ValueError, match="unknown exception name"):
            faults.inject("layer.op", error="NoSuchError", export_env=False)


class TestEnvPropagation:
    """The cross-process seam: ``inject`` exports, workers arm at import."""

    def test_inject_exports_and_clear_removes(self):
        faults.inject("worker.evaluate", error=RuntimeError, message="boom", every=3)
        spec = os.environ.get(faults.ENV_VAR, "")
        assert "worker.evaluate:" in spec
        assert "error=RuntimeError" in spec and "message=boom" in spec and "every=3" in spec
        faults.clear()
        assert faults.ENV_VAR not in os.environ

    def test_spec_round_trips_through_the_parser(self):
        faults.inject("worker.crash", crash=True, every=2, times=1)
        faults.inject("studies.point", error=ValueError, message="bad", export_env=True)
        exported = os.environ[faults.ENV_VAR]
        parsed = faults._parse_spec(exported)
        assert set(parsed) == {"worker.crash", "studies.point"}
        assert parsed["worker.crash"].crash is True
        assert parsed["worker.crash"].every == 2
        assert parsed["worker.crash"].times == 1
        assert parsed["studies.point"].error is ValueError
        assert parsed["studies.point"].message == "bad"

    def test_load_env_arms_a_fresh_process_registry(self, monkeypatch):
        # Simulate worker-process startup: empty registry, spec in the
        # environment, _load_env at import time.
        monkeypatch.setenv(faults.ENV_VAR, "worker.evaluate:error=RuntimeError,every=2")
        faults._registry.clear()
        faults._load_env()
        faults.hit("worker.evaluate")  # hit 1: silent
        with pytest.raises(RuntimeError):
            faults.hit("worker.evaluate")  # hit 2: fires

    def test_malformed_spec_fails_loudly(self):
        with pytest.raises(ValueError, match="bad failpoint entry"):
            faults._parse_spec("no-colon-directives")
        with pytest.raises(ValueError, match="unknown failpoint directive"):
            faults._parse_spec("layer.op:frequency=3")
        with pytest.raises(ValueError, match="must be positive"):
            faults._parse_spec("layer.op:every=0")

    def test_active_reports_specs(self):
        faults.inject("layer.op", every=4, export_env=False)
        assert faults.active() == {"layer.op": "layer.op:error=FaultInjected,every=4"}
