"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_model() -> FaultModel:
    """A three-fault model with hand-picked, easy-to-verify parameters."""
    return FaultModel(
        p=np.array([0.05, 0.02, 0.01]),
        q=np.array([1e-4, 5e-4, 2e-3]),
        names=("alpha", "beta", "gamma"),
    )


@pytest.fixture
def two_fault_model() -> FaultModel:
    """The two-fault model used for the Appendix A analysis."""
    return FaultModel(p=np.array([0.3, 0.5]), q=np.array([0.1, 0.1]))


@pytest.fixture
def homogeneous_model() -> FaultModel:
    """Ten identical faults."""
    return FaultModel.homogeneous(n=10, probability=0.04, impact=0.01)


@pytest.fixture
def random_model(rng: np.random.Generator) -> FaultModel:
    """A reproducible random model with fifty faults."""
    return FaultModel.random(rng, n=50, p_range=(0.005, 0.15), total_impact=0.4)
