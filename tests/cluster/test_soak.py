"""Chaos-soak harness: a short kill-and-restart soak over a live cluster.

These run the real thing -- in-process shards, a real router, real sockets
-- just compressed to a few seconds.  The invariants are the PR's headline
guarantees: byte-identical responses throughout, zero recompute after a
replica death, and exact placement snapback on readmission.
"""

from __future__ import annotations

import pytest

from repro.cluster.loadgen import run_soak


class TestSoak:
    def test_kill_and_restart_loses_no_warm_cache(self):
        report = run_soak(
            seed=11,
            distinct=4,
            shards=3,
            replication=2,
            rate=12.0,
            workers=4,
            soak_seconds=4.0,
            kill_shard_at=1.2,
            restart_shard_at=2.6,
            replications=200,
            n_faults=12,
            probe_interval_ms=80.0,
        )
        assert report["events"]["chaos_errors"] == []
        assert "killed_at" in report["events"]
        assert "restarted_at" in report["events"]
        totals = report["totals"]
        assert totals["byte_mismatches"] == 0
        assert totals["untyped_failures"] == 0
        # The headline: after the kill, the surviving replica answers from
        # the write-all-warmed cache -- nothing is computed again.
        assert totals["degraded_recomputed"] == 0
        assert report["router"]["replica_writes"] >= 4  # distinct * (R-1)
        assert report["router"]["replica_read_fallbacks"] >= 1
        assert report["router"]["shard_ejects"] >= 1
        assert report["router"]["shard_readmits"] >= 1
        assert report["placement_restored"] is True
        assert [phase["phase"] for phase in report["phases"]] == [
            "pre_kill", "degraded", "recovered",
        ]
        for phase in report["phases"]:
            assert phase["requests"] > 0

    def test_steady_soak_without_chaos(self):
        report = run_soak(
            seed=3,
            distinct=3,
            shards=2,
            replication=1,
            rate=10.0,
            workers=4,
            soak_seconds=1.5,
            replications=150,
            n_faults=10,
        )
        assert [phase["phase"] for phase in report["phases"]] == ["steady"]
        assert report["totals"]["errors"] == 0
        assert report["totals"]["byte_mismatches"] == 0
        assert report["latency_degradation"] == {}
        assert report["placement_restored"] is None


class TestSoakValidation:
    def test_chaos_timeline_must_fit_the_soak(self):
        with pytest.raises(ValueError):
            run_soak(soak_seconds=5.0, kill_shard_at=6.0)
        with pytest.raises(ValueError):
            run_soak(soak_seconds=5.0, kill_shard_at=2.0, restart_shard_at=1.0)
        with pytest.raises(ValueError):
            run_soak(soak_seconds=5.0, restart_shard_at=2.0)  # no kill
        with pytest.raises(ValueError):
            run_soak(soak_seconds=0.0)

    def test_replication_must_fit_shards(self):
        with pytest.raises(ValueError):
            run_soak(soak_seconds=2.0, shards=2, replication=3)
