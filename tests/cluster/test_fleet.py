"""The observability plane end to end, over real sockets: a live router
scraping live shards (fleet metrics in both formats), span shipping into the
router's collector (one stitched router->shard->worker tree), and the SLO
endpoint fed by federated snapshots."""

from __future__ import annotations

import http.client
import json
import time
from contextlib import contextmanager, suppress

from repro.cluster import ShardRouter
from repro.service import EvaluationServer, ServiceClient, start_in_background
from repro.telemetry import tracing
from repro.telemetry.collector import configure_shipping
from repro.telemetry.metrics import MetricsRegistry, parse_prometheus
from repro.telemetry.summarize import build_trace_tree

MODEL = {"p": [0.05, 0.02, 0.01], "q": [1e-4, 5e-4, 2e-3]}


@contextmanager
def fleet(shards: int = 2, probe_interval_ms: float = 50.0, router_kw: dict | None = None, **server_kw):
    """Live shards behind a live router, probing (and scraping) fast."""
    server_kw.setdefault("batch_window_ms", 1.0)
    servers = [EvaluationServer(**server_kw) for _ in range(shards)]
    handles = [start_in_background(server) for server in servers]
    router = ShardRouter(
        [f"127.0.0.1:{handle.port}" for handle in handles],
        probe_interval_ms=probe_interval_ms,
        retries=2,
        **(router_kw or {}),
    )
    front = start_in_background(router)
    try:
        yield servers, handles, router, front
    finally:
        front.stop()
        for handle in handles:
            with suppress(RuntimeError):
                handle.stop()


def _request(port: int, path: str, method: str = "GET", body: bytes | None = None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _get_json(port: int, path: str):
    status, body = _request(port, path)
    return status, (json.loads(body) if body else None)


def _wait(predicate, deadline: float = 10.0, interval: float = 0.02) -> bool:
    end = time.time() + deadline
    while time.time() < end:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _drive(front_port: int, count: int = 4, seed0: int = 0) -> None:
    client = ServiceClient(port=front_port, retries=2)
    try:
        for offset in range(count):
            client.evaluate_detail(
                MODEL,
                "montecarlo",
                options={"replications": 200},
                seed=seed0 + offset,
            )
    finally:
        client.close()


class TestFleetScope:
    def test_fleet_json_rollup_equals_merge_of_target_scrapes(self):
        with fleet() as (servers, handles, router, front):
            _drive(front.port)
            addresses = [f"127.0.0.1:{handle.port}" for handle in handles]
            # Wait until the probe loop has scraped every shard at least
            # once *after* the traffic above landed.
            assert _wait(
                lambda: all(
                    entry["snapshot"]["counters"].get("requests_total", 0) > 0
                    for entry in router.federation.targets().values()
                )
                and len(router.federation.targets()) == len(addresses)
            )
            status, document = _get_json(front.port, "/metrics?scope=fleet")
            assert status == 200
            assert document["scope"] == "fleet"
            assert set(document["targets"]) == {*addresses, "self"}
            assert document["target_count"] == len(addresses) + 1
            # The acceptance invariant: the flat roll-up IS the merge of the
            # per-target ingredients, exactly.
            for counter in ("requests_total", "errors_total", "evaluations_computed"):
                summed = sum(
                    entry["counters"].get(counter, 0)
                    for entry in document["targets"].values()
                )
                assert document[counter] == summed, counter
            # PR-6/7 schema stays a strict subset: flat counters/gauges plus
            # summarised histograms, with the fleet keys purely additive.
            assert document["histograms"]["request_seconds"]["count"] > 0
            assert document["histograms"]["request_seconds"]["exemplar"] is not None
            # Shard entries carry health/staleness annotations.
            for address in addresses:
                entry = document["targets"][address]
                assert entry["role"] == "shard"
                assert entry["healthy"] is True
                assert entry["age_seconds"] >= 0.0

    def test_fleet_prometheus_round_trips_and_labels_targets(self):
        with fleet() as (servers, handles, router, front):
            _drive(front.port, count=2, seed0=50)
            assert _wait(lambda: len(router.federation.targets()) == 2)
            status, body = _request(front.port, "/metrics?scope=fleet&format=prom")
            assert status == 200
            parsed = parse_prometheus(body.decode("utf-8"))
            assert parsed["counters"]["requests_total"] >= 2
            labeled = parsed["labeled"]
            for handle in handles:
                key = (
                    f'repro_fleet_target_up{{target="127.0.0.1:{handle.port}",'
                    f'role="shard"}}'
                )
                assert labeled[key] == 1
            assert labeled['repro_fleet_target_up{target="self",role="router"}'] == 1

    def test_unknown_scope_is_a_400(self):
        with fleet() as (servers, handles, router, front):
            status, document = _get_json(front.port, "/metrics?scope=bogus")
            assert status == 400
            assert "scope" in document["error"]

    def test_fleet_scope_with_federation_disabled_is_a_400(self):
        with fleet(router_kw={"federate": False}) as (servers, handles, router, front):
            assert router.federation is None
            status, _ = _get_json(front.port, "/metrics?scope=fleet")
            assert status == 400
            # The local scope still serves.
            status, document = _get_json(front.port, "/metrics")
            assert status == 200
            assert "requests_total" in document

    def test_shards_serve_local_scope_only(self):
        with fleet() as (servers, handles, router, front):
            status, document = _get_json(handles[0].port, "/metrics?scope=fleet")
            assert status == 400
            status, document = _get_json(handles[0].port, "/metrics?scope=local")
            assert status == 200
            assert "requests_total" in document


class TestTraceCollection:
    def test_post_traces_validates_and_counts(self):
        with fleet() as (servers, handles, router, front):
            good = {"name": "x", "trace": "t", "span": "s", "dur_ms": 1.0}
            body = json.dumps({"events": [good, {"name": "incomplete"}]}).encode()
            status, reply = _get_json_post(front.port, body)
            assert status == 200
            assert reply == {"accepted": 1, "rejected": 1}
            assert router.collector.events()[-1]["span"] == "s"
            assert router.registry["trace_events_received"] == 1
            assert router.registry["trace_events_rejected"] == 1
            status, _ = _request(front.port, "/v1/traces", "POST", b"{not json")
            assert status == 400

    def test_one_request_yields_a_stitched_router_shard_worker_tree(self, tmp_path):
        """The golden stitched trace: shipping armed in-process, one routed
        evaluation, and the collector holds one tree whose parent links run
        router.request -> server.request -> worker.kernel across pids."""
        registry = MetricsRegistry()
        with fleet(router_kw={"collector": None}) as (servers, handles, router, front):
            shipper = configure_shipping(
                f"127.0.0.1:{front.port}",
                export_env=False,
                registry=registry,
                flush_interval=0.05,
            )
            try:
                _drive(front.port, count=1, seed0=90)

                def stitched_trace():
                    shipper.flush()
                    by_trace: dict[str, set] = {}
                    for event in router.collector.events():
                        by_trace.setdefault(event["trace"], set()).add(event["name"])
                    for trace, names in by_trace.items():
                        if {"router.request", "server.request", "worker.kernel"} <= names:
                            return trace
                    return None

                assert _wait(lambda: stitched_trace() is not None)
                trace = stitched_trace()
                roots = build_trace_tree(router.collector.events(), trace)
                [root] = [node for node in roots if node["name"] == "router.request"]

                def find(node, name):
                    if node["name"] == name:
                        return node
                    for child in node["children"]:
                        found = find(child, name)
                        if found is not None:
                            return found
                    return None

                server_span = find(root, "server.request")
                assert server_span is not None, "shard root did not stitch under the router"
                kernel_span = find(server_span, "worker.kernel")
                assert kernel_span is not None, "worker span did not stitch under the shard"
                # Loss accounting: everything emitted was shipped, nothing
                # dropped -- the smoke invariant.
                assert registry["spans_shipped"] > 0
                dropped = registry["spans_dropped"] if "spans_dropped" in registry else 0
                assert dropped == 0
            finally:
                tracing.disable()


def _get_json_post(port: int, body: bytes):
    status, reply = _request(port, "/v1/traces", "POST", body)
    return status, (json.loads(reply) if reply else None)


class TestSLOEndpoint:
    def test_slo_report_reflects_federated_traffic(self):
        with fleet() as (servers, handles, router, front):
            _drive(front.port, count=3, seed0=70)
            assert _wait(lambda: len(router.federation.targets()) == 2)
            status, report = _get_json(front.port, "/v1/slo")
            assert status == 200
            assert report["role"] == "router"
            assert report["samples"] >= 1
            names = {row["name"] for row in report["objectives"]}
            assert names == {"availability", "latency-p99-500ms"}
            availability = next(
                row for row in report["objectives"] if row["name"] == "availability"
            )
            assert availability["cumulative"]["total"] >= 3
            assert availability["cumulative"]["met"] is True
