"""Consistent-hash ring: determinism, spill-and-snap-back, validation."""

from __future__ import annotations

import pytest

from repro.cluster.ring import (
    ConsistentHashRing,
    ReplicatedPlacement,
    parse_shard_specs,
)

SHARDS = ["127.0.0.1:8001", "127.0.0.1:8002", "127.0.0.1:8003"]
KEYS = [f"key-{index:04d}" for index in range(400)]


class TestDeterminism:
    def test_same_shards_same_assignment(self):
        first = ConsistentHashRing(SHARDS)
        second = ConsistentHashRing(list(SHARDS))
        assert [first.owner(key) for key in KEYS] == [second.owner(key) for key in KEYS]

    def test_shard_order_does_not_matter(self):
        """Ring positions hash shard *names*; listing order is irrelevant."""
        forward = ConsistentHashRing(SHARDS)
        backward = ConsistentHashRing(list(reversed(SHARDS)))
        assert [forward.owner(key) for key in KEYS] == [
            backward.owner(key) for key in KEYS
        ]

    def test_every_shard_owns_keys(self):
        ring = ConsistentHashRing(SHARDS)
        owners = {ring.owner(key) for key in KEYS}
        assert owners == set(SHARDS)


class TestFailoverSpill:
    def test_exclusion_spills_to_next_candidate(self):
        ring = ConsistentHashRing(SHARDS)
        for key in KEYS[:50]:
            first, second = ring.candidates(key)[:2]
            assert ring.owner(key) == first
            assert ring.owner(key, excluded={first}) == second

    def test_readmission_snaps_back_exactly(self):
        """Only the ejected shard's keys move; everything else is untouched,
        and clearing the exclusion restores the original assignment."""
        ring = ConsistentHashRing(SHARDS)
        before = {key: ring.owner(key) for key in KEYS}
        ejected = SHARDS[1]
        during = {key: ring.owner(key, excluded={ejected}) for key in KEYS}
        for key in KEYS:
            if before[key] == ejected:
                assert during[key] != ejected
            else:
                assert during[key] == before[key]
        after = {key: ring.owner(key) for key in KEYS}
        assert after == before

    def test_candidates_are_distinct_and_complete(self):
        ring = ConsistentHashRing(SHARDS)
        for key in KEYS[:20]:
            candidates = ring.candidates(key)
            assert sorted(candidates) == sorted(SHARDS)

    def test_all_excluded_returns_none(self):
        ring = ConsistentHashRing(SHARDS)
        assert ring.owner("key", excluded=set(SHARDS)) is None


class TestValidation:
    def test_empty_shards_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_duplicate_shards_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["a:1", "a:1"])

    def test_replicas_floor(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(SHARDS, replicas=0)


class TestWeights:
    def test_equal_weights_identical_to_unweighted(self):
        """Weight 1.0 everywhere must reproduce the unweighted layout byte
        for byte -- existing deployments reshuffle nothing on upgrade."""
        plain = ConsistentHashRing(SHARDS)
        weighted = ConsistentHashRing(SHARDS, weights={shard: 1.0 for shard in SHARDS})
        assert weighted._points == plain._points
        assert [weighted.owner(key) for key in KEYS] == [
            plain.owner(key) for key in KEYS
        ]

    def test_weight_scales_virtual_nodes(self):
        ring = ConsistentHashRing(SHARDS, replicas=64, weights={SHARDS[0]: 2.0})
        assert ring.node_count(SHARDS[0]) == 128
        assert ring.node_count(SHARDS[1]) == 64

    def test_heavier_shard_owns_more_keys(self):
        ring = ConsistentHashRing(SHARDS, weights={SHARDS[0]: 3.0})
        counts = {shard: 0 for shard in SHARDS}
        for key in KEYS:
            counts[ring.owner(key)] += 1
        assert counts[SHARDS[0]] > max(counts[SHARDS[1]], counts[SHARDS[2]])

    def test_weight_change_only_moves_keys_touching_that_shard(self):
        """Reweighting one shard moves only keys whose old or new owner is
        that shard -- the consistent-hashing locality guarantee."""
        before = ConsistentHashRing(SHARDS)
        after = ConsistentHashRing(SHARDS, weights={SHARDS[1]: 2.0})
        for key in KEYS:
            old, new = before.owner(key), after.owner(key)
            if old != new:
                assert SHARDS[1] in (old, new)

    def test_tiny_weight_keeps_one_node(self):
        ring = ConsistentHashRing(SHARDS, weights={SHARDS[0]: 1e-6})
        assert ring.node_count(SHARDS[0]) == 1

    def test_sequence_weights_align_with_shards(self):
        ring = ConsistentHashRing(SHARDS, weights=[2.0, 1.0, 1.0])
        assert ring.node_count(SHARDS[0]) == 128

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(SHARDS, weights={SHARDS[0]: 0.0})
        with pytest.raises(ValueError):
            ConsistentHashRing(SHARDS, weights={SHARDS[0]: -1.0})
        with pytest.raises(ValueError):
            ConsistentHashRing(SHARDS, weights={"nope:0": 2.0})
        with pytest.raises(ValueError):
            ConsistentHashRing(SHARDS, weights=[1.0, 2.0])  # wrong length


class TestParseShardSpecs:
    def test_plain_specs_carry_no_weights(self):
        names, weights = parse_shard_specs(SHARDS)
        assert names == SHARDS
        assert weights is None

    def test_weight_suffix(self):
        names, weights = parse_shard_specs(["a:1@2.5", "b:2"])
        assert names == ["a:1", "b:2"]
        assert weights == {"a:1": 2.5, "b:2": 1.0}

    def test_bad_specs_rejected(self):
        for spec in ["a:1@0", "a:1@-2", "a:1@nan", "a:1@inf", "a:1@", "@2", "a:1@x"]:
            with pytest.raises(ValueError):
                parse_shard_specs([spec])


class TestReplicatedPlacement:
    def test_replica_set_is_candidate_prefix(self):
        ring = ConsistentHashRing(SHARDS)
        placement = ReplicatedPlacement(ring, replication=2)
        for key in KEYS[:50]:
            assert placement.replica_set(key) == ring.candidates(key)[:2]
            assert placement.primary(key) == ring.owner(key)

    def test_replica_sets_are_distinct_shards(self):
        ring = ConsistentHashRing(SHARDS)
        placement = ReplicatedPlacement(ring, replication=3)
        for key in KEYS[:50]:
            replicas = placement.replica_set(key)
            assert len(replicas) == len(set(replicas)) == 3

    def test_excluding_nonmember_never_changes_the_set(self):
        """Ejecting a shard outside a key's replica set must not move that
        key -- only keys actually placed on the dead shard fail over."""
        ring = ConsistentHashRing(SHARDS)
        placement = ReplicatedPlacement(ring, replication=2)
        for key in KEYS[:100]:
            replicas = placement.replica_set(key)
            outsider = next(s for s in SHARDS if s not in replicas)
            assert placement.replica_set(key, excluded={outsider}) == replicas

    def test_excluding_primary_falls_to_next_candidate(self):
        ring = ConsistentHashRing(SHARDS)
        placement = ReplicatedPlacement(ring, replication=2)
        for key in KEYS[:50]:
            first, second, third = ring.candidates(key)
            assert placement.replica_set(key, excluded={first}) == [second, third]
            assert placement.primary(key, excluded={first}) == second

    def test_replication_bounds(self):
        ring = ConsistentHashRing(SHARDS)
        with pytest.raises(ValueError):
            ReplicatedPlacement(ring, replication=0)
        with pytest.raises(ValueError):
            ReplicatedPlacement(ring, replication=4)
