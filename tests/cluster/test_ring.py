"""Consistent-hash ring: determinism, spill-and-snap-back, validation."""

from __future__ import annotations

import pytest

from repro.cluster.ring import ConsistentHashRing

SHARDS = ["127.0.0.1:8001", "127.0.0.1:8002", "127.0.0.1:8003"]
KEYS = [f"key-{index:04d}" for index in range(400)]


class TestDeterminism:
    def test_same_shards_same_assignment(self):
        first = ConsistentHashRing(SHARDS)
        second = ConsistentHashRing(list(SHARDS))
        assert [first.owner(key) for key in KEYS] == [second.owner(key) for key in KEYS]

    def test_shard_order_does_not_matter(self):
        """Ring positions hash shard *names*; listing order is irrelevant."""
        forward = ConsistentHashRing(SHARDS)
        backward = ConsistentHashRing(list(reversed(SHARDS)))
        assert [forward.owner(key) for key in KEYS] == [
            backward.owner(key) for key in KEYS
        ]

    def test_every_shard_owns_keys(self):
        ring = ConsistentHashRing(SHARDS)
        owners = {ring.owner(key) for key in KEYS}
        assert owners == set(SHARDS)


class TestFailoverSpill:
    def test_exclusion_spills_to_next_candidate(self):
        ring = ConsistentHashRing(SHARDS)
        for key in KEYS[:50]:
            first, second = ring.candidates(key)[:2]
            assert ring.owner(key) == first
            assert ring.owner(key, excluded={first}) == second

    def test_readmission_snaps_back_exactly(self):
        """Only the ejected shard's keys move; everything else is untouched,
        and clearing the exclusion restores the original assignment."""
        ring = ConsistentHashRing(SHARDS)
        before = {key: ring.owner(key) for key in KEYS}
        ejected = SHARDS[1]
        during = {key: ring.owner(key, excluded={ejected}) for key in KEYS}
        for key in KEYS:
            if before[key] == ejected:
                assert during[key] != ejected
            else:
                assert during[key] == before[key]
        after = {key: ring.owner(key) for key in KEYS}
        assert after == before

    def test_candidates_are_distinct_and_complete(self):
        ring = ConsistentHashRing(SHARDS)
        for key in KEYS[:20]:
            candidates = ring.candidates(key)
            assert sorted(candidates) == sorted(SHARDS)

    def test_all_excluded_returns_none(self):
        ring = ConsistentHashRing(SHARDS)
        assert ring.owner("key", excluded=set(SHARDS)) is None


class TestValidation:
    def test_empty_shards_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_duplicate_shards_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["a:1", "a:1"])

    def test_replicas_floor(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(SHARDS, replicas=0)
