"""The shared cache tier: ``/v1/cache`` endpoints and peer read-through.

The contract under test: a shard warmed by earlier traffic answers for a
cold peer (``repro serve --cache-peer``), byte-identically, with zero
recomputation -- and every failure mode of the remote tier (cold peer,
dead peer, garbage digest) degrades to an ordinary cache miss.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.fault_model import FaultModel
from repro.service import EvaluationServer, ServiceClient, start_in_background
from repro.service.protocol import parse_evaluate_payload

MODEL = {"p": [0.05, 0.02, 0.01], "q": [1e-4, 5e-4, 2e-3]}
PAYLOAD = {
    "model": MODEL,
    "method": "montecarlo",
    "options": {"replications": 1000},
    "seed": 11,
}
DIGEST = parse_evaluate_payload(PAYLOAD).digest()


def _route(server: EvaluationServer, verb: str, path: str, body: bytes = b""):
    async def run():
        try:
            return await server._route(verb, path, body)
        finally:
            await server.aclose(drain_seconds=0.0)

    return asyncio.run(run())


def _routes(server: EvaluationServer, calls):
    """Several calls against one server inside one event loop."""

    async def run():
        try:
            return [
                await server._route(verb, path, body) for verb, path, body in calls
            ]
        finally:
            await server.aclose(drain_seconds=0.0)

    return asyncio.run(run())


class TestCacheEndpoints:
    def test_computed_entry_is_served_and_missing_is_404(self):
        server = EvaluationServer(batch_window_ms=1.0)
        (evaluated, cache_hit, cache_miss) = _routes(
            server,
            [
                ("POST", "/v1/evaluate", json.dumps(PAYLOAD).encode()),
                ("GET", f"/v1/cache/{DIGEST}", b""),
                ("GET", f"/v1/cache/{'0' * 64}", b""),
            ],
        )
        assert evaluated[0] == 200
        assert cache_hit[0] == 200
        assert cache_hit[1]["digest"] == DIGEST
        assert cache_hit[1]["metrics"] == evaluated[1]["result"]["metrics"]
        assert cache_miss[0] == 404
        assert cache_miss[1]["code"] == "cache_miss"
        assert server.registry["cache_endpoint_hits"] == 1
        assert server.registry["cache_endpoint_misses"] == 1

    def test_invalid_digest_is_404_and_wrong_verb_is_405(self):
        server = EvaluationServer(batch_window_ms=1.0)
        short, hexless, deleted = _routes(
            server,
            [
                ("GET", "/v1/cache/abc123", b""),
                ("GET", f"/v1/cache/{'g' * 64}", b""),
                ("DELETE", f"/v1/cache/{'0' * 64}", b""),
            ],
        )
        assert short[0] == 404
        assert hexless[0] == 404
        assert deleted[0] == 405

    def test_put_fills_the_lru_and_serves_back(self):
        request = parse_evaluate_payload(PAYLOAD)
        entry = {
            "payload": request.payload(),
            "metrics": {"pfd_single": 0.5, "replications": 1000},
        }
        server = EvaluationServer(batch_window_ms=1.0)
        put, get, evaluated = _routes(
            server,
            [
                ("PUT", f"/v1/cache/{DIGEST}", json.dumps(entry).encode()),
                ("GET", f"/v1/cache/{DIGEST}", b""),
                ("POST", "/v1/evaluate", json.dumps(PAYLOAD).encode()),
            ],
        )
        assert put[0] == 200
        assert put[1] == {"digest": DIGEST, "stored": True}
        assert get[0] == 200
        assert get[1]["metrics"] == entry["metrics"]
        # The pushed entry answers the evaluation without computing.
        assert evaluated[0] == 200
        assert evaluated[1]["served"]["cached"] == "lru"
        assert evaluated[1]["result"]["metrics"] == entry["metrics"]
        assert server.registry["evaluations_computed"] == 0

    def test_put_rejects_garbage(self):
        server = EvaluationServer(batch_window_ms=1.0)
        not_json, no_metrics = _routes(
            server,
            [
                ("PUT", f"/v1/cache/{DIGEST}", b"{nope"),
                ("PUT", f"/v1/cache/{DIGEST}", b'{"payload": {}}'),
            ],
        )
        assert not_json[0] == 400
        assert no_metrics[0] == 400


class TestPeerReadThrough:
    def test_cold_shard_answers_from_warm_peer(self):
        warm = EvaluationServer(batch_window_ms=1.0)
        with start_in_background(warm) as warm_handle:
            warm_client = ServiceClient(port=warm_handle.port)
            model = FaultModel.from_dict(MODEL)
            direct, warm_served = warm_client.evaluate_detail(
                model, "montecarlo", options={"replications": 1000}, seed=11
            )
            assert warm_served["cached"] is None

            cold = EvaluationServer(
                batch_window_ms=1.0,
                cache_peers=(f"127.0.0.1:{warm_handle.port}",),
            )
            with start_in_background(cold) as cold_handle:
                cold_client = ServiceClient(port=cold_handle.port)
                result, served = cold_client.evaluate_detail(
                    model, "montecarlo", options={"replications": 1000}, seed=11
                )
                assert served["cached"] == "remote"
                assert result.metrics == direct.metrics
                assert cold.registry["evaluations_computed"] == 0
                assert cold.registry["cache_hits_remote"] == 1
                assert cold.registry["remote_cache_probes"] >= 1
                # Back-filled locally: the next identical request never
                # leaves the shard.
                _, again = cold_client.evaluate_detail(
                    model, "montecarlo", options={"replications": 1000}, seed=11
                )
                assert again["cached"] == "lru"
                assert cold.registry["cache_hits_remote"] == 1

    def test_cold_peer_is_a_miss_not_an_error(self):
        backer = EvaluationServer(batch_window_ms=1.0)  # cold: nothing cached
        with start_in_background(backer) as backer_handle:
            front = EvaluationServer(
                batch_window_ms=1.0,
                cache_peers=(f"127.0.0.1:{backer_handle.port}",),
            )
            with start_in_background(front) as front_handle:
                client = ServiceClient(port=front_handle.port)
                _, served = client.evaluate_detail(
                    FaultModel.from_dict(MODEL),
                    "montecarlo",
                    options={"replications": 1000},
                    seed=11,
                )
                assert served["cached"] is None
                assert front.registry["evaluations_computed"] == 1
                assert front.registry["remote_cache_probes"] == 1
                assert front.registry["cache_hits_remote"] == 0

    def test_dead_peer_degrades_to_recomputation(self):
        server = EvaluationServer(
            batch_window_ms=1.0, cache_peers=("127.0.0.1:1",)  # nothing listens
        )
        with start_in_background(server) as handle:
            client = ServiceClient(port=handle.port)
            result, served = client.evaluate_detail(
                FaultModel.from_dict(MODEL), "moments"
            )
            assert served["cached"] is None
            assert server.registry["evaluations_computed"] == 1
