"""Load generator: seeded determinism, phase reports, cache-tier accounting."""

from __future__ import annotations

import pytest

from repro.cluster.loadgen import (
    LoadGenerator,
    build_workload,
    duplicate_schedule,
    run_loadgen,
)
from repro.service import EvaluationServer, start_in_background
from repro.service.protocol import parse_evaluate_payload


def _digests(payloads) -> list[str]:
    return [
        parse_evaluate_payload(
            {
                "model": item["model"].to_dict(),
                "method": item["method"],
                "options": item["options"],
                "seed": item["seed"],
                "p_scale": item["p_scale"],
            }
        ).digest()
        for item in payloads
    ]


class TestDeterminism:
    def test_same_seed_same_workload(self):
        first = build_workload(seed=7, distinct=6)
        second = build_workload(seed=7, distinct=6)
        assert _digests(first) == _digests(second)

    def test_different_seed_different_workload(self):
        assert _digests(build_workload(seed=7, distinct=6)) != _digests(
            build_workload(seed=8, distinct=6)
        )

    def test_payloads_are_distinct_groups(self):
        """Every payload its own batch group: the shard-parallel guarantee."""
        payloads = build_workload(seed=3, distinct=8)
        keys = {
            parse_evaluate_payload(
                {
                    "model": item["model"].to_dict(),
                    "method": item["method"],
                    "options": item["options"],
                    "seed": item["seed"],
                }
            ).group_key()
            for item in payloads
        }
        assert len(keys) == 8

    def test_duplicate_schedule_is_deterministic(self):
        payloads = build_workload(seed=7, distinct=8)
        first = duplicate_schedule(7, payloads, factor=3)
        second = duplicate_schedule(7, payloads, factor=3)
        assert [id(item) for item in first] == [id(item) for item in second] or [
            item["seed"] for item in first
        ] == [item["seed"] for item in second]
        # A quarter of the payloads, repeated `factor` times each.
        assert len(first) == 2 * 3
        subset = {item["seed"] for item in payloads[:2]}
        assert {item["seed"] for item in first} == subset

    def test_validation(self):
        with pytest.raises(ValueError):
            build_workload(seed=0, distinct=0)
        with pytest.raises(ValueError):
            LoadGenerator(rate=0.0)
        with pytest.raises(ValueError):
            LoadGenerator(workers=0)


class TestAgainstLiveServer:
    def test_standard_run_report_shape_and_cache_accounting(self):
        server = EvaluationServer(batch_window_ms=1.0)
        with start_in_background(server) as handle:
            record = run_loadgen(
                port=handle.port,
                seed=5,
                distinct=4,
                duplicate_factor=3,
                rate=500.0,
                workers=4,
                replications=200,
                n_faults=10,
            )
        assert [phase["phase"] for phase in record["phases"]] == [
            "cold",
            "warm",
            "duplicates",
        ]
        cold, warm, duplicates = record["phases"]
        for phase in (cold, warm, duplicates):
            assert phase["errors"] == 0
            assert phase["throughput_rps"] > 0
            assert set(phase["latency_ms"]) == {"p50", "p95", "p99", "max"}
            assert phase["latency_ms"]["p50"] is not None
            assert sum(phase["served"].values()) == phase["requests"]
        assert cold["served"]["computed"] == 4
        # Warm phase: everything from the server's LRU, nothing recomputed.
        assert warm["served"]["lru"] == 4
        assert warm["served"]["computed"] == 0
        assert duplicates["served"]["computed"] == 0
        assert server.registry["evaluations_computed"] == 4

    def test_phase_subset_and_unknown_phase(self):
        server = EvaluationServer(batch_window_ms=1.0)
        with start_in_background(server) as handle:
            record = run_loadgen(
                port=handle.port,
                seed=5,
                distinct=2,
                replications=200,
                n_faults=10,
                rate=500.0,
                phases=("cold",),
            )
            assert len(record["phases"]) == 1
            with pytest.raises(ValueError):
                run_loadgen(port=handle.port, phases=("tepid",))

    def test_errors_are_counted_not_raised(self):
        """A saturated or failing endpoint shows up in the report, the
        generator itself keeps going (open loop)."""
        server = EvaluationServer(batch_window_ms=1.0)
        with start_in_background(server) as handle:
            generator = LoadGenerator(port=handle.port, rate=500.0, workers=2)
            bad = [
                {
                    "model": build_workload(seed=1, distinct=1)[0]["model"],
                    "method": "no-such-method",
                    "options": {},
                    "seed": 1,
                }
            ]
            try:
                report = generator.run_phase("cold", bad)
            finally:
                generator.close()
        assert report["errors"] == 1
        assert report["error_statuses"] == {"400": 1}
        assert report["served"]["computed"] == 0
