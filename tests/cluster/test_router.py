"""Router edge cases: failover, rebalance, duplicate races, Retry-After.

Real sockets throughout: shards are live :class:`EvaluationServer` instances
on ephemeral ports, the router fronts them, and a stock
:class:`ServiceClient` talks to the router -- the same path production
traffic takes.  Shard names embed ephemeral ports, so ring placement varies
between runs; tests that need a key on a *specific* shard search for one
(``_payload_owned_by``) instead of assuming.
"""

from __future__ import annotations

import http.server
import json
import threading
from contextlib import contextmanager, suppress

import pytest

from repro.api import evaluate_batch
from repro.cluster import ShardRouter
from repro.core.fault_model import FaultModel
from repro.service import EvaluationServer, ServiceClient, ServiceError, start_in_background
from repro.service.protocol import parse_evaluate_payload

MODEL = {"p": [0.05, 0.02, 0.01], "q": [1e-4, 5e-4, 2e-3]}


@contextmanager
def cluster(shards: int = 2, probe_interval_ms: float = 10_000.0, **server_kw):
    """``shards`` live servers behind a live router; yields the moving parts.

    The probe interval defaults high so tests control ejection/readmission
    deterministically instead of racing the probe loop.
    """
    server_kw.setdefault("batch_window_ms", 1.0)
    servers = [EvaluationServer(**server_kw) for _ in range(shards)]
    handles = [start_in_background(server) for server in servers]
    router = ShardRouter(
        [f"127.0.0.1:{handle.port}" for handle in handles],
        probe_interval_ms=probe_interval_ms,
        retries=2,
    )
    front = start_in_background(router)
    try:
        yield servers, handles, router, front
    finally:
        front.stop()
        for handle in handles:
            # Tests kill shards mid-run; stopping one again is a no-op.
            with suppress(RuntimeError):
                handle.stop()


def _computed(servers) -> list[int]:
    return [server.registry["evaluations_computed"] for server in servers]


def _payload_owned_by(router: ShardRouter, shard: str, exclude_seeds=()) -> dict:
    """A /v1/evaluate payload whose route key lands on ``shard``."""
    for seed in range(1000):
        if seed in exclude_seeds:
            continue
        payload = {
            "model": MODEL,
            "method": "montecarlo",
            "options": {"replications": 500},
            "seed": seed,
        }
        key = parse_evaluate_payload(payload).group_key()
        if router.ring.owner(key) == shard:
            return payload
    raise AssertionError(f"no seed in 0..999 hashed to {shard}")  # pragma: no cover


def _on_router_loop(front, call) -> None:
    """Run ``call`` on the router's event loop and wait for it."""
    done = threading.Event()

    def step():
        call()
        done.set()

    front._loop.call_soon_threadsafe(step)
    assert done.wait(5.0)


def _strip_elapsed(record: dict) -> dict:
    return {key: value for key, value in record.items() if key != "elapsed_seconds"}


class TestFailover:
    def test_batch_survives_shard_death_byte_identically(self):
        """A fanned-out batch matches the direct API before AND after one of
        the two shards dies -- failover changes placement, never bytes."""
        requests = [
            {"method": "moments"},
            {"method": "montecarlo", "replications": 500},
            {"method": "bounds"},
            {"method": "exact", "max_support": 256},
        ]
        model = FaultModel.from_dict(MODEL)
        direct = [
            _strip_elapsed(result.to_dict())
            for result in evaluate_batch(model, requests, seed=7)
        ]
        with cluster(2) as (servers, handles, router, front):
            client = ServiceClient(port=front.port)
            before = [
                _strip_elapsed(result.to_dict())
                for result in client.evaluate_batch(model, requests, seed=7)
            ]
            assert before == direct
            handles[1].stop()  # one shard dies with its LRU still warm
            after = [
                _strip_elapsed(result.to_dict())
                for result in client.evaluate_batch(model, requests, seed=7)
            ]
            assert after == direct
            health = client.health()
            assert health["role"] == "router"

    def test_all_shards_dead_is_a_typed_503(self):
        with cluster(1) as (servers, handles, router, front):
            client = ServiceClient(port=front.port, retries=0)
            handles[0].stop()
            with pytest.raises(ServiceError) as excinfo:
                client.evaluate(FaultModel.from_dict(MODEL), "moments")
            assert excinfo.value.status == 503
            assert excinfo.value.code == "no_healthy_shards"
            assert excinfo.value.retry_after is not None


class TestRebalance:
    def test_eject_spills_and_readmit_snaps_back(self):
        """An ejected shard's keys spill to its neighbour; readmission puts
        new traffic for its range right back."""
        with cluster(2) as (servers, handles, router, front):
            client = ServiceClient(port=front.port)
            target = router.ring.shards[0]
            other_index = 1 if target.endswith(str(handles[0].port)) else 0
            target_index = 1 - other_index

            first = _payload_owned_by(router, target)
            client.evaluate_detail(**_as_kwargs(first))
            assert _computed(servers)[target_index] == 1

            _on_router_loop(front, lambda: router.health.eject(target))
            second = _payload_owned_by(router, target, exclude_seeds={first["seed"]})
            _, served = client.evaluate_detail(**_as_kwargs(second))
            assert served["cached"] is None
            counts = _computed(servers)
            assert counts[other_index] == 1  # spilled to the healthy shard
            assert counts[target_index] == 1  # untouched while ejected

            _on_router_loop(front, lambda: router.health.readmit(target))
            third = _payload_owned_by(
                router, target, exclude_seeds={first["seed"], second["seed"]}
            )
            client.evaluate_detail(**_as_kwargs(third))
            assert _computed(servers)[target_index] == 2  # snapped back
            assert router.health.readmissions >= 1

    def test_unaffected_keys_never_move_during_ejection(self):
        with cluster(2) as (servers, handles, router, front):
            client = ServiceClient(port=front.port)
            survivor = router.ring.shards[1]
            survivor_index = 0 if survivor.endswith(str(handles[0].port)) else 1
            payload = _payload_owned_by(router, survivor)
            client.evaluate_detail(**_as_kwargs(payload))
            assert _computed(servers)[survivor_index] == 1
            _on_router_loop(front, lambda: router.health.eject(router.ring.shards[0]))
            repeat = dict(payload, seed=payload["seed"])  # identical request
            # Identical repeat: the router LRU answers it; a *fresh* key owned
            # by the survivor still computes on the survivor.
            fresh = _payload_owned_by(router, survivor, exclude_seeds={payload["seed"]})
            client.evaluate_detail(**_as_kwargs(repeat))
            client.evaluate_detail(**_as_kwargs(fresh))
            assert _computed(servers)[survivor_index] == 2


class TestDuplicateRace:
    def test_concurrent_identical_requests_compute_once(self):
        """Two clients race the same request through the router: one compute
        total across the cluster, identical answers for both.

        The shard window is widened so both arrivals land inside one
        batching window even on a loaded machine -- the coalescing
        contract, not scheduler luck, is what's under test.
        """
        with cluster(2, batch_window_ms=250.0) as (servers, handles, router, front):
            results = []
            errors = []
            barrier = threading.Barrier(2)

            def one():
                client = ServiceClient(port=front.port)
                try:
                    barrier.wait(5.0)
                    result, served = client.evaluate_detail(
                        FaultModel.from_dict(MODEL),
                        "montecarlo",
                        options={"replications": 2000},
                        seed=42,
                    )
                    results.append((_strip_elapsed(result.to_dict()), served))
                except ServiceError as error:  # pragma: no cover - fails the test
                    errors.append(error)

            threads = [threading.Thread(target=one) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            assert not errors
            assert len(results) == 2
            assert results[0][0] == results[1][0]
            assert sum(_computed(servers)) == 1


def _as_kwargs(payload: dict) -> dict:
    return {
        "model": FaultModel.from_dict(payload["model"]),
        "method": payload["method"],
        "options": payload.get("options"),
        "seed": payload.get("seed"),
    }


class _SaturatedShard(http.server.BaseHTTPRequestHandler):
    """A fake shard: healthy ``/healthz``, everything else 429 + Retry-After.

    Models a real saturated shard exactly: ``/healthz`` bypasses admission
    control, so probes read healthy while work is rejected.
    """

    protocol_version = "HTTP/1.1"

    def _send(self, status: int, body: dict, extra=()) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        for name, value in extra:
            self.send_header(name, value)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):
        if self.path == "/healthz":
            self._send(200, {"status": "ok"})
        else:
            self._send(404, {"error": "not found", "code": "not_found"})

    def do_POST(self):
        self.rfile.read(int(self.headers.get("Content-Length", "0") or "0"))
        self._send(
            429,
            {"error": "server saturated", "code": "saturated"},
            extra=[("Retry-After", "7")],
        )

    def log_message(self, *args):  # noqa: D102 - silence test output
        pass


class TestRetryAfterPropagation:
    def test_upstream_retry_after_reaches_the_client(self):
        """A saturated shard's 429 -- Retry-After header included -- comes
        back through the router once every candidate is out."""
        stub = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _SaturatedShard)
        thread = threading.Thread(target=stub.serve_forever, daemon=True)
        thread.start()
        router = ShardRouter(
            [f"127.0.0.1:{stub.server_address[1]}"],
            probe_interval_ms=10_000.0,
            retries=1,
        )
        front = start_in_background(router)
        try:
            client = ServiceClient(port=front.port, retries=0)
            with pytest.raises(ServiceError) as excinfo:
                client.evaluate(FaultModel.from_dict(MODEL), "moments")
            assert excinfo.value.status == 429
            assert excinfo.value.code == "saturated"
            assert excinfo.value.retry_after == pytest.approx(7.0)
        finally:
            front.stop()
            stub.shutdown()
            thread.join(5.0)
