"""Router edge cases: failover, rebalance, duplicate races, Retry-After.

Real sockets throughout: shards are live :class:`EvaluationServer` instances
on ephemeral ports, the router fronts them, and a stock
:class:`ServiceClient` talks to the router -- the same path production
traffic takes.  Shard names embed ephemeral ports, so ring placement varies
between runs; tests that need a key on a *specific* shard search for one
(``_payload_owned_by``) instead of assuming.
"""

from __future__ import annotations

import http.server
import json
import threading
from contextlib import contextmanager, suppress

import pytest

from repro.api import evaluate_batch
from repro.cluster import ShardRouter
from repro.core.fault_model import FaultModel
from repro.service import EvaluationServer, ServiceClient, ServiceError, start_in_background
from repro.service.protocol import parse_evaluate_payload

MODEL = {"p": [0.05, 0.02, 0.01], "q": [1e-4, 5e-4, 2e-3]}


@contextmanager
def cluster(
    shards: int = 2,
    probe_interval_ms: float = 10_000.0,
    router_kw: dict | None = None,
    **server_kw,
):
    """``shards`` live servers behind a live router; yields the moving parts.

    The probe interval defaults high so tests control ejection/readmission
    deterministically instead of racing the probe loop.  ``router_kw``
    reaches the :class:`ShardRouter` constructor (replication, lru_size...).
    """
    server_kw.setdefault("batch_window_ms", 1.0)
    servers = [EvaluationServer(**server_kw) for _ in range(shards)]
    handles = [start_in_background(server) for server in servers]
    router = ShardRouter(
        [f"127.0.0.1:{handle.port}" for handle in handles],
        probe_interval_ms=probe_interval_ms,
        retries=2,
        **(router_kw or {}),
    )
    front = start_in_background(router)
    try:
        yield servers, handles, router, front
    finally:
        front.stop()
        for handle in handles:
            # Tests kill shards mid-run; stopping one again is a no-op.
            with suppress(RuntimeError):
                handle.stop()


def _computed(servers) -> list[int]:
    return [server.registry["evaluations_computed"] for server in servers]


def _payload_owned_by(router: ShardRouter, shard: str, exclude_seeds=()) -> dict:
    """A /v1/evaluate payload whose route key lands on ``shard``."""
    for seed in range(1000):
        if seed in exclude_seeds:
            continue
        payload = {
            "model": MODEL,
            "method": "montecarlo",
            "options": {"replications": 500},
            "seed": seed,
        }
        key = parse_evaluate_payload(payload).group_key()
        if router.ring.owner(key) == shard:
            return payload
    raise AssertionError(f"no seed in 0..999 hashed to {shard}")  # pragma: no cover


def _on_router_loop(front, call) -> None:
    """Run ``call`` on the router's event loop and wait for it."""
    done = threading.Event()

    def step():
        call()
        done.set()

    front._loop.call_soon_threadsafe(step)
    assert done.wait(5.0)


def _strip_elapsed(record: dict) -> dict:
    return {key: value for key, value in record.items() if key != "elapsed_seconds"}


class TestFailover:
    def test_batch_survives_shard_death_byte_identically(self):
        """A fanned-out batch matches the direct API before AND after one of
        the two shards dies -- failover changes placement, never bytes."""
        requests = [
            {"method": "moments"},
            {"method": "montecarlo", "replications": 500},
            {"method": "bounds"},
            {"method": "exact", "max_support": 256},
        ]
        model = FaultModel.from_dict(MODEL)
        direct = [
            _strip_elapsed(result.to_dict())
            for result in evaluate_batch(model, requests, seed=7)
        ]
        with cluster(2) as (servers, handles, router, front):
            client = ServiceClient(port=front.port)
            before = [
                _strip_elapsed(result.to_dict())
                for result in client.evaluate_batch(model, requests, seed=7)
            ]
            assert before == direct
            handles[1].stop()  # one shard dies with its LRU still warm
            after = [
                _strip_elapsed(result.to_dict())
                for result in client.evaluate_batch(model, requests, seed=7)
            ]
            assert after == direct
            health = client.health()
            assert health["role"] == "router"

    def test_all_shards_dead_is_a_typed_503(self):
        with cluster(1) as (servers, handles, router, front):
            client = ServiceClient(port=front.port, retries=0)
            handles[0].stop()
            with pytest.raises(ServiceError) as excinfo:
                client.evaluate(FaultModel.from_dict(MODEL), "moments")
            assert excinfo.value.status == 503
            assert excinfo.value.code == "no_healthy_shards"
            assert excinfo.value.retry_after is not None


class TestRebalance:
    def test_eject_spills_and_readmit_snaps_back(self):
        """An ejected shard's keys spill to its neighbour; readmission puts
        new traffic for its range right back."""
        with cluster(2) as (servers, handles, router, front):
            client = ServiceClient(port=front.port)
            target = router.ring.shards[0]
            other_index = 1 if target.endswith(str(handles[0].port)) else 0
            target_index = 1 - other_index

            first = _payload_owned_by(router, target)
            client.evaluate_detail(**_as_kwargs(first))
            assert _computed(servers)[target_index] == 1

            _on_router_loop(front, lambda: router.health.eject(target))
            second = _payload_owned_by(router, target, exclude_seeds={first["seed"]})
            _, served = client.evaluate_detail(**_as_kwargs(second))
            assert served["cached"] is None
            counts = _computed(servers)
            assert counts[other_index] == 1  # spilled to the healthy shard
            assert counts[target_index] == 1  # untouched while ejected

            _on_router_loop(front, lambda: router.health.readmit(target))
            third = _payload_owned_by(
                router, target, exclude_seeds={first["seed"], second["seed"]}
            )
            client.evaluate_detail(**_as_kwargs(third))
            assert _computed(servers)[target_index] == 2  # snapped back
            assert router.health.readmissions >= 1

    def test_unaffected_keys_never_move_during_ejection(self):
        with cluster(2) as (servers, handles, router, front):
            client = ServiceClient(port=front.port)
            survivor = router.ring.shards[1]
            survivor_index = 0 if survivor.endswith(str(handles[0].port)) else 1
            payload = _payload_owned_by(router, survivor)
            client.evaluate_detail(**_as_kwargs(payload))
            assert _computed(servers)[survivor_index] == 1
            _on_router_loop(front, lambda: router.health.eject(router.ring.shards[0]))
            repeat = dict(payload, seed=payload["seed"])  # identical request
            # Identical repeat: the router LRU answers it; a *fresh* key owned
            # by the survivor still computes on the survivor.
            fresh = _payload_owned_by(router, survivor, exclude_seeds={payload["seed"]})
            client.evaluate_detail(**_as_kwargs(repeat))
            client.evaluate_detail(**_as_kwargs(fresh))
            assert _computed(servers)[survivor_index] == 2


class TestDuplicateRace:
    def test_concurrent_identical_requests_compute_once(self):
        """Two clients race the same request through the router: one compute
        total across the cluster, identical answers for both.

        The shard window is widened so both arrivals land inside one
        batching window even on a loaded machine -- the coalescing
        contract, not scheduler luck, is what's under test.
        """
        with cluster(2, batch_window_ms=250.0) as (servers, handles, router, front):
            results = []
            errors = []
            barrier = threading.Barrier(2)

            def one():
                client = ServiceClient(port=front.port)
                try:
                    barrier.wait(5.0)
                    result, served = client.evaluate_detail(
                        FaultModel.from_dict(MODEL),
                        "montecarlo",
                        options={"replications": 2000},
                        seed=42,
                    )
                    results.append((_strip_elapsed(result.to_dict()), served))
                except ServiceError as error:  # pragma: no cover - fails the test
                    errors.append(error)

            threads = [threading.Thread(target=one) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            assert not errors
            assert len(results) == 2
            assert results[0][0] == results[1][0]
            assert sum(_computed(servers)) == 1


def _as_kwargs(payload: dict) -> dict:
    return {
        "model": FaultModel.from_dict(payload["model"]),
        "method": payload["method"],
        "options": payload.get("options"),
        "seed": payload.get("seed"),
    }


class _SaturatedShard(http.server.BaseHTTPRequestHandler):
    """A fake shard: healthy ``/healthz``, everything else 429 + Retry-After.

    Models a real saturated shard exactly: ``/healthz`` bypasses admission
    control, so probes read healthy while work is rejected.
    """

    protocol_version = "HTTP/1.1"

    def _send(self, status: int, body: dict, extra=()) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        for name, value in extra:
            self.send_header(name, value)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):
        if self.path == "/healthz":
            self._send(200, {"status": "ok"})
        else:
            self._send(404, {"error": "not found", "code": "not_found"})

    def do_POST(self):
        self.rfile.read(int(self.headers.get("Content-Length", "0") or "0"))
        self._send(
            429,
            {"error": "server saturated", "code": "saturated"},
            extra=[("Retry-After", "7")],
        )

    def log_message(self, *args):  # noqa: D102 - silence test output
        pass


class TestRetryAfterPropagation:
    def test_upstream_retry_after_reaches_the_client(self):
        """A saturated shard's 429 -- Retry-After header included -- comes
        back through the router once every candidate is out."""
        stub = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _SaturatedShard)
        thread = threading.Thread(target=stub.serve_forever, daemon=True)
        thread.start()
        router = ShardRouter(
            [f"127.0.0.1:{stub.server_address[1]}"],
            probe_interval_ms=10_000.0,
            retries=1,
        )
        front = start_in_background(router)
        try:
            client = ServiceClient(port=front.port, retries=0)
            with pytest.raises(ServiceError) as excinfo:
                client.evaluate(FaultModel.from_dict(MODEL), "moments")
            assert excinfo.value.status == 429
            assert excinfo.value.code == "saturated"
            assert excinfo.value.retry_after == pytest.approx(7.0)
        finally:
            front.stop()
            stub.shutdown()
            thread.join(5.0)


def _wait_for(predicate, timeout: float = 10.0, step: float = 0.02) -> bool:
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


class TestReplication:
    def test_write_all_warms_replica_and_primary_death_loses_nothing(self):
        """With R=2 a computed result fans out to the standby replica, so
        killing the primary serves the *same bytes* from the replica's cache
        -- zero recompute, one counted read fallback."""
        with cluster(
            3, router_kw={"replication": 2, "lru_size": 0}
        ) as (servers, handles, router, front):
            client = ServiceClient(port=front.port)
            payload = _payload_owned_by(router, router.ring.shards[0])
            key = parse_evaluate_payload(payload).group_key()
            primary, standby = router.placement.replica_set(key)

            first, served = client.evaluate_detail(**_as_kwargs(payload))
            assert served["cached"] is None  # computed on the primary
            assert _wait_for(lambda: router.registry["replica_writes"] >= 1)

            primary_index = next(
                index for index, handle in enumerate(handles)
                if primary.endswith(f":{handle.port}")
            )
            computed_before = sum(_computed(servers))
            handles[primary_index].stop()

            second, served = client.evaluate_detail(**_as_kwargs(payload))
            assert _strip_elapsed(second.to_dict()) == _strip_elapsed(first.to_dict())
            assert served["cached"] in ("lru", "disk")  # the replica was warm
            assert sum(_computed(servers)) == computed_before  # nothing recomputed
            assert router.registry["replica_read_fallbacks"] >= 1
            assert primary in router.health.excluded()

    def test_readmission_restores_exact_placement(self):
        with cluster(
            3, router_kw={"replication": 2, "lru_size": 0}
        ) as (servers, handles, router, front):
            keys = [f"key-{index}" for index in range(64)]
            before = {key: router.placement.replica_set(key) for key in keys}
            victim = router.ring.shards[0]
            _on_router_loop(front, lambda: router.health.eject(victim))
            during = {
                key: router.placement.replica_set(
                    key, excluded=router.health.excluded()
                )
                for key in keys
            }
            assert any(during[key] != before[key] for key in keys)
            _on_router_loop(front, lambda: router.health.readmit(victim))
            after = {key: router.placement.replica_set(key) for key in keys}
            assert after == before

    def test_replica_write_failpoint_counts_failures(self):
        from repro import faults

        with cluster(
            2, router_kw={"replication": 2, "lru_size": 0}
        ) as (servers, handles, router, front):
            faults.inject("router.replica_write", export_env=False)
            try:
                client = ServiceClient(port=front.port)
                client.evaluate_detail(
                    FaultModel.from_dict(MODEL),
                    "montecarlo",
                    options={"replications": 500},
                    seed=3,
                )
                assert _wait_for(
                    lambda: router.registry["replica_write_failures"] >= 1
                )
                assert router.registry["replica_writes"] == 0
            finally:
                faults.clear("router.replica_write")

    def test_replication_must_fit_the_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(["a:1", "b:2"], replication=3)

    def test_lru_size_zero_disables_the_router_cache(self):
        with cluster(1, router_kw={"lru_size": 0}) as (servers, handles, router, front):
            assert router.cache is None
            client = ServiceClient(port=front.port)
            kwargs = _as_kwargs(
                {"model": MODEL, "method": "montecarlo",
                 "options": {"replications": 500}, "seed": 11}
            )
            client.evaluate_detail(**kwargs)
            _, served = client.evaluate_detail(**kwargs)
            # The repeat is served by the shard's cache, never tagged "router".
            assert served["cached"] in ("lru", "disk")


class TestSharedHealthView:
    def test_router_serves_its_view(self):
        with cluster(2) as (servers, handles, router, front):
            client = ServiceClient(port=front.port)
            body = client.health_peers()
            assert body["role"] == "router"
            assert set(body["view"]) == set(router.ring.shards)
            victim = router.ring.shards[0]
            _on_router_loop(front, lambda: router.health.eject(victim))
            body = client.health_peers()
            assert body["view"][victim]["ejected"] is True

    def test_shard_serves_an_empty_view(self):
        server = EvaluationServer(batch_window_ms=1.0)
        handle = start_in_background(server)
        try:
            client = ServiceClient(port=handle.port)
            body = client.health_peers()
            assert body["role"] == "shard"
            assert body["view"] == {}
        finally:
            handle.stop()

    def test_peer_routers_converge_on_an_ejection(self):
        """Router A never saw the failure; router B did.  One merge pass
        later A excludes the shard too, and counts the adoption."""
        with cluster(2) as (servers, handles, router_a, front_a):
            shard_names = [f"127.0.0.1:{handle.port}" for handle in handles]
            router_b = ShardRouter(
                shard_names, probe_interval_ms=10_000.0, retries=2
            )
            front_b = start_in_background(router_b)
            try:
                import asyncio

                from repro.cluster.transport import ShardTransport

                peer = f"127.0.0.1:{front_b.port}"
                router_a.peer_routers = (peer,)
                router_a.peer_transports = {peer: ShardTransport(peer, timeout=5.0)}
                victim = shard_names[0]
                _on_router_loop(front_b, lambda: router_b.health.eject(victim))
                future = asyncio.run_coroutine_threadsafe(
                    router_a._merge_peer_views(), front_a._loop
                )
                future.result(timeout=10.0)
                assert victim in router_a.health.excluded()
                assert router_a.registry["health_merges"] >= 1
            finally:
                front_b.stop()

    def test_unreachable_peer_is_skipped(self):
        import asyncio

        from repro.cluster.transport import ShardTransport

        with cluster(1) as (servers, handles, router, front):
            peer = "127.0.0.1:1"  # nothing listens there
            router.peer_routers = (peer,)
            router.peer_transports = {peer: ShardTransport(peer, timeout=2.0)}
            future = asyncio.run_coroutine_threadsafe(
                router._merge_peer_views(), front._loop
            )
            future.result(timeout=10.0)  # swallows the connection failure
            client = ServiceClient(port=front.port)
            # Traffic still flows; the merge failure is silent by design.
            client.evaluate(FaultModel.from_dict(MODEL), "moments")
            assert router.registry["health_merges"] == 0
