"""Shard health bookkeeping: ejection flavours, cooldowns, readmission."""

from __future__ import annotations

import pytest

from repro.cluster.health import ShardHealth

SHARDS = ["a:1", "b:2", "c:3"]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def health(clock: FakeClock) -> ShardHealth:
    return ShardHealth(SHARDS, clock=clock)


class TestUntilProbe:
    def test_stays_out_forever_without_readmit(self, health, clock):
        health.eject("a:1")
        clock.now = 1e9
        assert health.is_excluded("a:1")
        assert health.excluded() == {"a:1"}
        assert health.needs_probe() == ["a:1"]

    def test_readmit_clears_and_counts(self, health, clock):
        health.eject("a:1")
        assert health.readmit("a:1") is True
        assert not health.is_excluded("a:1")
        assert health.readmissions == 1
        # Readmitting a healthy shard is a no-op, not a second readmission.
        assert health.readmit("a:1") is False
        assert health.readmissions == 1


class TestCooldown:
    def test_lapses_by_clock_without_probe(self, health, clock):
        health.eject("b:2", cooldown=5.0)
        clock.now = 4.9
        assert health.excluded() == {"b:2"}
        assert health.needs_probe() == []  # saturation never needs a probe
        clock.now = 5.0
        assert health.excluded() == frozenset()
        assert health.readmissions == 1

    def test_cooldown_cannot_shorten_until_probe(self, health, clock):
        """A dead shard answering nothing stays dead even if a racing request
        saw a stale 429 and tried a cooldown ejection."""
        health.eject("a:1")  # until-probe
        health.eject("a:1", cooldown=0.5)
        clock.now = 100.0
        assert health.is_excluded("a:1")
        assert health.needs_probe() == ["a:1"]

    def test_longer_cooldown_extends(self, health, clock):
        health.eject("b:2", cooldown=1.0)
        health.eject("b:2", cooldown=10.0)
        clock.now = 5.0
        assert health.is_excluded("b:2")
        clock.now = 10.0
        assert not health.is_excluded("b:2")

    def test_reejection_while_out_counts_once(self, health, clock):
        health.eject("b:2", cooldown=5.0)
        health.eject("b:2", cooldown=5.0)
        assert health.ejections == 1
        clock.now = 6.0
        health.eject("b:2", cooldown=5.0)
        assert health.ejections == 2


class TestSnapshot:
    def test_snapshot_shape(self, health, clock):
        health.eject("c:3")
        snapshot = health.snapshot()
        assert set(snapshot) == set(SHARDS)
        assert snapshot["c:3"] == {"healthy": False, "ejected": True}
        assert snapshot["a:1"] == {"healthy": True, "ejected": False}

    def test_unknown_shard_rejected(self, health):
        with pytest.raises(ValueError):
            health.eject("nope:0")


class TestSharedView:
    def test_export_shape(self, health, clock):
        clock.now = 10.0
        health.eject("a:1")
        health.eject("b:2", cooldown=5.0)
        view = health.export()
        assert set(view) == set(SHARDS)
        assert view["a:1"] == {
            "ejected": True, "updated": 10.0,
            "until_probe": True, "cooldown_remaining": None,
        }
        assert view["b:2"] == {
            "ejected": True, "updated": 10.0,
            "until_probe": False, "cooldown_remaining": 5.0,
        }
        assert view["c:3"] == {"ejected": False, "updated": 0.0}

    def test_export_has_no_nonfinite_floats(self, health):
        import json
        import math

        health.eject("a:1")
        text = json.dumps(health.export(), allow_nan=False)  # raises on inf
        assert "Infinity" not in text
        assert not any(
            isinstance(v, float) and not math.isfinite(v)
            for entry in health.export().values()
            for v in entry.values()
            if v is not None
        )

    def test_merge_adopts_newer_ejection(self, clock):
        ours = ShardHealth(SHARDS, clock=clock)
        theirs = ShardHealth(SHARDS, clock=clock)
        clock.now = 5.0
        theirs.eject("a:1")
        adopted = ours.merge(theirs.export())
        assert adopted == 1
        assert ours.is_excluded("a:1")
        assert ours.needs_probe() == ["a:1"]

    def test_merge_adopts_newer_readmission(self, clock):
        ours = ShardHealth(SHARDS, clock=clock)
        theirs = ShardHealth(SHARDS, clock=clock)
        clock.now = 1.0
        ours.eject("a:1")
        theirs.eject("a:1")
        clock.now = 2.0
        theirs.readmit("a:1")  # the peer probed it back to life
        assert ours.merge(theirs.export()) == 1
        assert not ours.is_excluded("a:1")

    def test_older_stamp_never_wins(self, clock):
        ours = ShardHealth(SHARDS, clock=clock)
        theirs = ShardHealth(SHARDS, clock=clock)
        clock.now = 1.0
        theirs.eject("a:1")
        stale = theirs.export()
        clock.now = 5.0
        ours.readmit("a:1")  # our probe is fresher than their ejection
        assert ours.merge(stale) == 0
        assert not ours.is_excluded("a:1")

    def test_touch_defends_local_state(self, clock):
        """A probe confirming health re-stamps the shard, so a peer's older
        ejection cannot resurrect it."""
        ours = ShardHealth(SHARDS, clock=clock)
        theirs = ShardHealth(SHARDS, clock=clock)
        clock.now = 1.0
        theirs.eject("a:1")
        clock.now = 2.0
        ours.touch("a:1")
        assert ours.merge(theirs.export()) == 0
        assert not ours.is_excluded("a:1")

    def test_cooldown_remaining_reanchored_on_receiver_clock(self, clock):
        ours = ShardHealth(SHARDS, clock=clock)
        theirs = ShardHealth(SHARDS, clock=clock)
        clock.now = 1.0
        theirs.eject("b:2", cooldown=10.0)
        clock.now = 4.0  # 7 s of cooldown left at export time
        view = theirs.export()
        assert view["b:2"]["cooldown_remaining"] == pytest.approx(7.0)
        ours.merge(view)
        clock.now = 10.9
        assert ours.is_excluded("b:2")
        clock.now = 11.1  # 4.0 + 7.0 lapsed on *our* clock
        assert not ours.is_excluded("b:2")

    def test_same_verdict_adopts_stamp_silently(self, clock):
        ours = ShardHealth(SHARDS, clock=clock)
        theirs = ShardHealth(SHARDS, clock=clock)
        clock.now = 1.0
        ours.eject("a:1")
        clock.now = 2.0
        theirs.eject("a:1")
        assert ours.merge(theirs.export()) == 0  # no state change counted
        clock.now = 3.0
        ours.readmit("a:1")
        # ... but the adopted stamp means their now-stale view cannot win.
        assert ours.merge(theirs.export()) == 0
        assert not ours.is_excluded("a:1")

    def test_merge_ignores_garbage(self, health):
        adopted = health.merge(
            {
                "nope:0": {"ejected": True, "updated": 99.0},
                "a:1": "not-a-mapping",
                "b:2": {"ejected": True, "updated": True},  # bool stamp
                "c:3": {"ejected": True},  # no stamp
            }
        )
        assert adopted == 0
        assert health.excluded() == frozenset()

    def test_two_views_converge_both_directions(self, clock):
        left = ShardHealth(SHARDS, clock=clock)
        right = ShardHealth(SHARDS, clock=clock)
        clock.now = 1.0
        left.eject("a:1")
        clock.now = 2.0
        right.eject("b:2", cooldown=60.0)
        left.merge(right.export())
        right.merge(left.export())
        assert left.excluded() == right.excluded() == {"a:1", "b:2"}

    def test_alias_is_the_same_class(self):
        from repro.cluster.health import HealthView

        assert ShardHealth is HealthView


class TestProbeSchedule:
    def test_offsets_deterministic_and_spread(self):
        from repro.cluster.health import probe_offset

        shards = [f"shard-{i}:800{i}" for i in range(8)]
        offsets = [probe_offset(shard, 1.0) for shard in shards]
        assert offsets == [probe_offset(shard, 1.0) for shard in shards]
        assert all(0.0 <= offset < 1.0 for offset in offsets)
        assert len(set(offsets)) == len(offsets)  # no stampede

    def test_due_fires_each_shard_once_per_interval(self, clock):
        from repro.cluster.health import ProbeSchedule

        schedule = ProbeSchedule(SHARDS, 1.0, clock=clock)
        clock.now = 1.0
        first = schedule.due()
        assert sorted(first) == sorted(SHARDS)
        assert schedule.due() == []  # nothing due twice in one beat
        clock.now = 2.0
        assert sorted(schedule.due()) == sorted(SHARDS)

    def test_stall_skips_missed_beats(self, clock):
        from repro.cluster.health import ProbeSchedule

        schedule = ProbeSchedule(["a:1"], 1.0, clock=clock)
        clock.now = 50.0  # the loop stalled for ~50 intervals
        assert schedule.due() == ["a:1"]
        assert schedule.due() == []  # one probe, not fifty
        assert schedule.seconds_until_next() == pytest.approx(1.0)

    def test_seconds_until_next(self, clock):
        from repro.cluster.health import ProbeSchedule, probe_offset

        schedule = ProbeSchedule(["a:1"], 2.0, clock=clock)
        assert schedule.seconds_until_next() == pytest.approx(
            probe_offset("a:1", 2.0)
        )

    def test_bad_interval_rejected(self):
        from repro.cluster.health import ProbeSchedule

        with pytest.raises(ValueError):
            ProbeSchedule(SHARDS, 0.0)
