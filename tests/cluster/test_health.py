"""Shard health bookkeeping: ejection flavours, cooldowns, readmission."""

from __future__ import annotations

import pytest

from repro.cluster.health import ShardHealth

SHARDS = ["a:1", "b:2", "c:3"]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def health(clock: FakeClock) -> ShardHealth:
    return ShardHealth(SHARDS, clock=clock)


class TestUntilProbe:
    def test_stays_out_forever_without_readmit(self, health, clock):
        health.eject("a:1")
        clock.now = 1e9
        assert health.is_excluded("a:1")
        assert health.excluded() == {"a:1"}
        assert health.needs_probe() == ["a:1"]

    def test_readmit_clears_and_counts(self, health, clock):
        health.eject("a:1")
        assert health.readmit("a:1") is True
        assert not health.is_excluded("a:1")
        assert health.readmissions == 1
        # Readmitting a healthy shard is a no-op, not a second readmission.
        assert health.readmit("a:1") is False
        assert health.readmissions == 1


class TestCooldown:
    def test_lapses_by_clock_without_probe(self, health, clock):
        health.eject("b:2", cooldown=5.0)
        clock.now = 4.9
        assert health.excluded() == {"b:2"}
        assert health.needs_probe() == []  # saturation never needs a probe
        clock.now = 5.0
        assert health.excluded() == frozenset()
        assert health.readmissions == 1

    def test_cooldown_cannot_shorten_until_probe(self, health, clock):
        """A dead shard answering nothing stays dead even if a racing request
        saw a stale 429 and tried a cooldown ejection."""
        health.eject("a:1")  # until-probe
        health.eject("a:1", cooldown=0.5)
        clock.now = 100.0
        assert health.is_excluded("a:1")
        assert health.needs_probe() == ["a:1"]

    def test_longer_cooldown_extends(self, health, clock):
        health.eject("b:2", cooldown=1.0)
        health.eject("b:2", cooldown=10.0)
        clock.now = 5.0
        assert health.is_excluded("b:2")
        clock.now = 10.0
        assert not health.is_excluded("b:2")

    def test_reejection_while_out_counts_once(self, health, clock):
        health.eject("b:2", cooldown=5.0)
        health.eject("b:2", cooldown=5.0)
        assert health.ejections == 1
        clock.now = 6.0
        health.eject("b:2", cooldown=5.0)
        assert health.ejections == 2


class TestSnapshot:
    def test_snapshot_shape(self, health, clock):
        health.eject("c:3")
        snapshot = health.snapshot()
        assert set(snapshot) == set(SHARDS)
        assert snapshot["c:3"] == {"healthy": False, "ejected": True}
        assert snapshot["a:1"] == {"healthy": True, "ejected": False}

    def test_unknown_shard_rejected(self, health):
        with pytest.raises(ValueError):
            health.eject("nope:0")
