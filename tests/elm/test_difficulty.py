"""Tests for difficulty functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.elm.difficulty import DifficultyFunction


class TestValidation:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            DifficultyFunction(np.array([0.5, 0.5]), np.array([0.1]))

    def test_rejects_unnormalised_probabilities(self):
        with pytest.raises(ValueError):
            DifficultyFunction(np.array([0.5, 0.6]), np.array([0.1, 0.2]))

    def test_rejects_out_of_range_difficulties(self):
        with pytest.raises(ValueError):
            DifficultyFunction(np.array([0.5, 0.5]), np.array([0.1, 1.2]))

    def test_rejects_negative_probabilities(self):
        with pytest.raises(ValueError):
            DifficultyFunction(np.array([1.5, -0.5]), np.array([0.1, 0.2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DifficultyFunction(np.array([]), np.array([]))


class TestMoments:
    @pytest.fixture
    def difficulty(self) -> DifficultyFunction:
        return DifficultyFunction(
            demand_probabilities=np.array([0.25, 0.25, 0.5]),
            difficulties=np.array([0.0, 0.4, 0.1]),
        )

    def test_mean(self, difficulty: DifficultyFunction):
        assert difficulty.mean_difficulty() == pytest.approx(0.25 * 0.4 + 0.5 * 0.1)

    def test_second_moment(self, difficulty: DifficultyFunction):
        assert difficulty.moment(2) == pytest.approx(0.25 * 0.16 + 0.5 * 0.01)

    def test_moment_rejects_bad_order(self, difficulty: DifficultyFunction):
        with pytest.raises(ValueError):
            difficulty.moment(0)

    def test_variance_is_jensen_gap(self, difficulty: DifficultyFunction):
        assert difficulty.variance_of_difficulty() == pytest.approx(
            difficulty.moment(2) - difficulty.mean_difficulty() ** 2
        )
        assert difficulty.variance_of_difficulty() >= 0.0

    def test_covariance_with_itself_is_variance(self, difficulty: DifficultyFunction):
        assert difficulty.covariance_with(difficulty) == pytest.approx(
            difficulty.variance_of_difficulty()
        )

    def test_covariance_rejects_mismatched_profiles(self, difficulty: DifficultyFunction):
        other = DifficultyFunction(np.array([0.5, 0.5]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            difficulty.covariance_with(other)
        different_profile = DifficultyFunction(
            np.array([0.3, 0.3, 0.4]), np.array([0.0, 0.4, 0.1])
        )
        with pytest.raises(ValueError):
            difficulty.covariance_with(different_profile)
