"""Tests for the fault-model / difficulty-function bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import single_version_mean, two_version_mean
from repro.demandspace.profiles import GridProfile
from repro.demandspace.regions import BoxRegion
from repro.demandspace.space import DiscreteDemandSpace
from repro.elm.comparison import compare_fault_model_with_el, difficulty_from_fault_model


@pytest.fixture
def grid_profile() -> GridProfile:
    # Ten one-dimensional demands, uniformly likely.
    return GridProfile.uniform(DiscreteDemandSpace(np.arange(10, dtype=float).reshape(-1, 1)))


class TestDisjointRegions:
    def test_difficulty_values(self, grid_profile: GridProfile):
        regions = [
            BoxRegion(np.array([0.0]), np.array([1.0])),  # demands 0, 1
            BoxRegion(np.array([5.0]), np.array([5.0])),  # demand 5
        ]
        model = FaultModel(p=np.array([0.2, 0.4]), q=np.array([0.2, 0.1]))
        difficulty = difficulty_from_fault_model(model, regions, grid_profile)
        np.testing.assert_allclose(difficulty.difficulties[[0, 1]], 0.2)
        np.testing.assert_allclose(difficulty.difficulties[5], 0.4)
        np.testing.assert_allclose(difficulty.difficulties[[2, 3, 4, 6, 7, 8, 9]], 0.0)

    def test_means_agree_with_fault_model(self, grid_profile: GridProfile):
        regions = [
            BoxRegion(np.array([0.0]), np.array([1.0])),
            BoxRegion(np.array([5.0]), np.array([5.0])),
        ]
        model = FaultModel(p=np.array([0.2, 0.4]), q=np.array([0.2, 0.1]))
        comparison = compare_fault_model_with_el(model, regions, grid_profile)
        assert comparison["el_mean_single"] == pytest.approx(single_version_mean(model))
        assert comparison["el_mean_system"] == pytest.approx(two_version_mean(model))
        assert comparison["el_excess_over_independence"] >= 0.0

    def test_rejects_region_count_mismatch(self, grid_profile: GridProfile):
        model = FaultModel(p=np.array([0.2]), q=np.array([0.1]))
        with pytest.raises(ValueError):
            difficulty_from_fault_model(model, [], grid_profile)


class TestOverlappingRegions:
    def test_overlap_biases_point_in_opposite_directions(self, grid_profile: GridProfile):
        # Two regions share demands 4 and 5.  The single-version sum formula
        # double-counts the shared demands (pessimistic), while the two-version
        # sum misses coincident failures through *different* faults on the
        # shared demands (optimistic).
        regions = [
            BoxRegion(np.array([2.0]), np.array([5.0])),
            BoxRegion(np.array([4.0]), np.array([7.0])),
        ]
        model = FaultModel(p=np.array([0.3, 0.3]), q=np.array([0.4, 0.4]), strict=True)
        comparison = compare_fault_model_with_el(model, regions, grid_profile)
        assert comparison["fault_model_mean_single"] >= comparison["el_mean_single"]
        assert comparison["fault_model_mean_system"] <= comparison["el_mean_system"]

    def test_overlapping_difficulty_combines_probabilities(self, grid_profile: GridProfile):
        regions = [
            BoxRegion(np.array([0.0]), np.array([5.0])),
            BoxRegion(np.array([3.0]), np.array([9.0])),
        ]
        model = FaultModel(p=np.array([0.5, 0.5]), q=np.array([0.4, 0.4]), strict=False)
        difficulty = difficulty_from_fault_model(model, regions, grid_profile)
        # Demands covered by both regions have difficulty 1 - 0.5*0.5 = 0.75.
        np.testing.assert_allclose(difficulty.difficulties[[3, 4, 5]], 0.75)
        np.testing.assert_allclose(difficulty.difficulties[[0, 1, 2]], 0.5)
