"""Tests for the Eckhardt-Lee model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.elm.difficulty import DifficultyFunction
from repro.elm.eckhardt_lee import EckhardtLeeModel


@pytest.fixture
def model() -> EckhardtLeeModel:
    difficulty = DifficultyFunction(
        demand_probabilities=np.array([0.2, 0.3, 0.5]),
        difficulties=np.array([0.5, 0.1, 0.01]),
    )
    return EckhardtLeeModel(difficulty)


class TestMeans:
    def test_single_version_mean(self, model: EckhardtLeeModel):
        assert model.mean_single_version_pfd() == pytest.approx(
            0.2 * 0.5 + 0.3 * 0.1 + 0.5 * 0.01
        )

    def test_system_mean_is_second_moment(self, model: EckhardtLeeModel):
        assert model.mean_system_pfd(2) == pytest.approx(
            0.2 * 0.25 + 0.3 * 0.01 + 0.5 * 0.0001
        )

    def test_three_version_mean(self, model: EckhardtLeeModel):
        assert model.mean_system_pfd(3) == pytest.approx(
            0.2 * 0.125 + 0.3 * 0.001 + 0.5 * 1e-6
        )


class TestIndependenceComparison:
    def test_system_worse_than_independence(self, model: EckhardtLeeModel):
        # The EL headline: E[theta^2] >= (E[theta])^2.
        assert model.mean_system_pfd(2) >= model.independence_prediction(2)
        assert model.excess_over_independence(2) >= 0.0

    def test_excess_equals_difficulty_variance(self, model: EckhardtLeeModel):
        assert model.excess_over_independence(2) == pytest.approx(
            model.difficulty.variance_of_difficulty()
        )

    def test_constant_difficulty_matches_independence(self):
        difficulty = DifficultyFunction(np.array([0.5, 0.5]), np.array([0.1, 0.1]))
        model = EckhardtLeeModel(difficulty)
        assert model.excess_over_independence(2) == pytest.approx(0.0, abs=1e-15)

    def test_mean_gain_bounded_by_one(self, model: EckhardtLeeModel):
        assert 0.0 < model.mean_gain(2) <= 1.0

    def test_mean_gain_degenerate_zero_difficulty(self):
        difficulty = DifficultyFunction(np.array([1.0]), np.array([0.0]))
        assert EckhardtLeeModel(difficulty).mean_gain(2) == 1.0
