"""Tests for the Littlewood-Miller model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.elm.difficulty import DifficultyFunction
from repro.elm.littlewood_miller import LittlewoodMillerModel


def _difficulties(values_a, values_b, probabilities=None):
    probabilities = probabilities if probabilities is not None else np.full(len(values_a), 1.0 / len(values_a))
    return (
        DifficultyFunction(np.asarray(probabilities), np.asarray(values_a, dtype=float)),
        DifficultyFunction(np.asarray(probabilities), np.asarray(values_b, dtype=float)),
    )


class TestConstruction:
    def test_rejects_mismatched_demand_spaces(self):
        difficulty_a = DifficultyFunction(np.array([0.5, 0.5]), np.array([0.1, 0.2]))
        difficulty_b = DifficultyFunction(np.array([1.0]), np.array([0.1]))
        with pytest.raises(ValueError):
            LittlewoodMillerModel(difficulty_a, difficulty_b)

    def test_rejects_mismatched_profiles(self):
        difficulty_a = DifficultyFunction(np.array([0.5, 0.5]), np.array([0.1, 0.2]))
        difficulty_b = DifficultyFunction(np.array([0.4, 0.6]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            LittlewoodMillerModel(difficulty_a, difficulty_b)


class TestForcedDiversityEffect:
    def test_negatively_correlated_difficulties_beat_independence(self):
        # Methodology A struggles on demand 1, methodology B on demand 2.
        difficulty_a, difficulty_b = _difficulties([0.4, 0.01], [0.01, 0.4])
        model = LittlewoodMillerModel(difficulty_a, difficulty_b)
        assert model.difficulty_covariance() < 0.0
        assert model.beats_independence()
        assert model.mean_system_pfd() < model.independence_prediction()

    def test_positively_correlated_difficulties_fall_short(self):
        difficulty_a, difficulty_b = _difficulties([0.4, 0.01], [0.5, 0.02])
        model = LittlewoodMillerModel(difficulty_a, difficulty_b)
        assert model.difficulty_covariance() > 0.0
        assert not model.beats_independence()

    def test_identical_methodologies_reduce_to_eckhardt_lee(self):
        from repro.elm.eckhardt_lee import EckhardtLeeModel

        difficulty_a, difficulty_b = _difficulties([0.3, 0.05, 0.1], [0.3, 0.05, 0.1])
        lm_model = LittlewoodMillerModel(difficulty_a, difficulty_b)
        el_model = EckhardtLeeModel(difficulty_a)
        assert lm_model.mean_system_pfd() == pytest.approx(el_model.mean_system_pfd(2))

    def test_single_version_means(self):
        difficulty_a, difficulty_b = _difficulties([0.2, 0.4], [0.1, 0.3])
        model = LittlewoodMillerModel(difficulty_a, difficulty_b)
        mean_a, mean_b = model.mean_single_version_pfd()
        assert mean_a == pytest.approx(0.3)
        assert mean_b == pytest.approx(0.2)
