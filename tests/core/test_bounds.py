"""Tests for the inequality lemmas and confidence bounds (eqs. (4), (9), (11), (12))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import (
    PAPER_PMAX_TABLE,
    STD_CONTRACTION_THRESHOLD,
    confidence_bound_from_bound,
    confidence_bound_from_moments,
    mean_bound,
    mean_gain_factor,
    pmax_gain_table,
    std_bound,
    std_gain_factor,
    verify_confidence_bound,
    verify_mean_bound,
    verify_std_bound,
)
from repro.core.fault_model import FaultModel
from repro.core.moments import two_version_mean, two_version_std


class TestGainFactors:
    def test_mean_gain_factor_is_pmax(self):
        assert mean_gain_factor(0.1) == 0.1

    def test_mean_gain_factor_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mean_gain_factor(1.2)

    def test_std_gain_factor_formula(self):
        assert std_gain_factor(0.1) == pytest.approx(np.sqrt(0.1 * 1.1))

    def test_std_contraction_threshold_is_golden_ratio_conjugate(self):
        # Section 3.1.2 quotes (-1 + 5^0.5) / 2 = 0.618033987.
        assert STD_CONTRACTION_THRESHOLD == pytest.approx(0.618033987, abs=1e-8)
        p = STD_CONTRACTION_THRESHOLD
        assert p**2 * (1 - p**2) == pytest.approx(p * (1 - p), abs=1e-12)


class TestPaperTable:
    def test_table_matches_paper_rows(self):
        # Section 5.1 table: 0.5 -> 0.866, 0.1 -> 0.332, 0.01 -> 0.100.
        table = pmax_gain_table()
        values = {row.p_max: row.gain_factor for row in table}
        for p_max, printed in PAPER_PMAX_TABLE.items():
            assert values[p_max] == pytest.approx(printed, abs=5e-4)

    def test_improvement_factor_for_pmax_001(self):
        # "The last line gives us a 10-fold improvement."
        row = pmax_gain_table([0.01])[0]
        assert row.improvement_factor == pytest.approx(10.0, rel=0.01)

    def test_small_pmax_factor_approaches_sqrt_pmax(self):
        # "For even lower values of pmax, clearly sqrt(pmax(1+pmax)) ~= sqrt(pmax)."
        p_max = 1e-6
        assert std_gain_factor(p_max) == pytest.approx(np.sqrt(p_max), rel=1e-3)

    def test_improvement_factor_degenerate(self):
        assert pmax_gain_table([0.0])[0].improvement_factor == float("inf")


class TestModelBounds:
    def test_eq4_mean_bound_holds(self, small_model, random_model, homogeneous_model):
        for model in (small_model, random_model, homogeneous_model):
            actual, bound = verify_mean_bound(model)
            assert actual <= bound + 1e-15
            assert actual == two_version_mean(model)
            assert bound == mean_bound(model)

    def test_eq9_std_bound_holds(self, small_model, random_model, homogeneous_model):
        for model in (small_model, random_model, homogeneous_model):
            actual, bound = verify_std_bound(model)
            assert actual <= bound + 1e-15
            assert actual == two_version_std(model)
            assert bound == std_bound(model)

    def test_eq9_holds_even_above_contraction_threshold(self):
        # Even with p_i close to 1 the sqrt(pmax(1+pmax)) bound remains valid
        # (it simply exceeds 1).
        model = FaultModel(p=np.array([0.9, 0.95]), q=np.array([0.3, 0.3]))
        actual, bound = verify_std_bound(model)
        assert actual <= bound + 1e-15

    def test_confidence_bound_ordering(self, small_model, random_model):
        # actual <= eq. (11) bound <= eq. (12) bound.
        for model in (small_model, random_model):
            for k in (0.0, 1.0, 2.33, 3.0):
                actual, from_moments, from_bound = verify_confidence_bound(model, k)
                assert actual <= from_moments + 1e-15
                assert from_moments <= from_bound + 1e-15


class TestConfidenceBoundFunctions:
    def test_worked_example_values(self):
        # Section 5.1: mu1=0.01, sigma1=0.001, k=1, pmax=0.1.
        eq11 = confidence_bound_from_moments(0.01, 0.001, 0.1, 1.0)
        eq12 = confidence_bound_from_bound(0.011, 0.1)
        assert eq11 == pytest.approx(0.001 + 0.000332, abs=2e-5)
        assert eq12 == pytest.approx(0.00365, abs=2e-4)

    def test_eq11_with_k_zero_reduces_to_eq4(self):
        assert confidence_bound_from_moments(0.02, 0.005, 0.1, 0.0) == pytest.approx(0.002)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            confidence_bound_from_moments(-0.01, 0.001, 0.1, 1.0)
        with pytest.raises(ValueError):
            confidence_bound_from_moments(0.01, -0.001, 0.1, 1.0)
        with pytest.raises(ValueError):
            confidence_bound_from_moments(0.01, 0.001, 0.1, -1.0)
        with pytest.raises(ValueError):
            confidence_bound_from_bound(-0.1, 0.1)
        with pytest.raises(ValueError):
            confidence_bound_from_bound(0.1, 1.5)
