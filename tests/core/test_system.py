"""Tests for the system facades."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.no_common_faults import prob_any_common_fault, prob_any_fault
from repro.core.system import OneOutOfRSystem, OneOutOfTwoSystem, SingleVersionSystem


class TestFacades:
    def test_single_version_matches_formulas(self, small_model: FaultModel):
        system = SingleVersionSystem(small_model)
        moments = pfd_moments(small_model, 1)
        assert system.versions == 1
        assert system.mean_pfd() == pytest.approx(moments.mean)
        assert system.variance_pfd() == pytest.approx(moments.variance)
        assert system.std_pfd() == pytest.approx(moments.std)
        assert system.prob_any_fault() == pytest.approx(prob_any_fault(small_model))

    def test_one_out_of_two_matches_formulas(self, small_model: FaultModel):
        system = OneOutOfTwoSystem(small_model)
        moments = pfd_moments(small_model, 2)
        assert system.versions == 2
        assert system.mean_pfd() == pytest.approx(moments.mean)
        assert system.prob_any_fault() == pytest.approx(prob_any_common_fault(small_model))
        assert system.single_channel().versions == 1

    def test_general_r_system(self, small_model: FaultModel):
        system = OneOutOfRSystem(model=small_model, versions=3)
        assert system.mean_pfd() == pytest.approx(float(np.sum(small_model.p**3 * small_model.q)))

    def test_rejects_bad_version_count(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            OneOutOfRSystem(model=small_model, versions=0)

    def test_fault_count_distribution(self, small_model: FaultModel):
        system = OneOutOfTwoSystem(small_model)
        np.testing.assert_allclose(
            system.fault_count_distribution().probabilities, small_model.p**2
        )

    def test_prob_fault_free_complement(self, small_model: FaultModel):
        system = OneOutOfTwoSystem(small_model)
        assert system.prob_fault_free() + system.prob_any_fault() == pytest.approx(1.0)


class TestDistributionsAndBounds:
    def test_exact_bound_above_normal_bound_consistency(self, random_model: FaultModel):
        system = SingleVersionSystem(random_model)
        exact = system.exact_bound(0.99, max_support=512)
        normal = system.normal_bound(0.99)
        # The two estimates should agree to within a modest relative factor for
        # a model with many faults (central limit regime).
        assert exact == pytest.approx(normal, rel=0.25)

    def test_bounds_order_between_architectures(self, small_model: FaultModel):
        single = SingleVersionSystem(small_model)
        pair = OneOutOfTwoSystem(small_model)
        assert pair.normal_bound(0.99) <= single.normal_bound(0.99)
        assert pair.exact_bound(0.99) <= single.exact_bound(0.99)

    def test_prob_pfd_exceeds(self, small_model: FaultModel):
        system = SingleVersionSystem(small_model)
        assert system.prob_pfd_exceeds(0.0) == pytest.approx(system.prob_any_fault())
        assert system.prob_pfd_exceeds(1.0) == 0.0

    def test_normal_approximation_error_bound_positive(self, small_model: FaultModel):
        assert SingleVersionSystem(small_model).normal_approximation_error_bound() > 0.0


class TestSampling:
    def test_sample_pfd_mean(self, small_model: FaultModel, rng):
        system = OneOutOfTwoSystem(small_model)
        samples = system.sample_pfd(rng, 200_000)
        assert samples.mean() == pytest.approx(system.mean_pfd(), rel=0.25)

    def test_sample_pfd_single_version(self, small_model: FaultModel, rng):
        system = SingleVersionSystem(small_model)
        samples = system.sample_pfd(rng, 100_000)
        assert samples.mean() == pytest.approx(system.mean_pfd(), rel=0.05)

    def test_sample_pfd_rejects_negative_size(self, small_model: FaultModel, rng):
        with pytest.raises(ValueError):
            SingleVersionSystem(small_model).sample_pfd(rng, -1)
