"""Tests for the probability of no common faults (Section 4, eq. (10))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.no_common_faults import (
    expected_common_faults,
    fault_count_distribution,
    prob_any_common_fault,
    prob_any_fault,
    prob_fault_free_pair,
    prob_fault_free_r_versions,
    prob_fault_free_version,
    risk_ratio,
    success_ratio,
)


class TestFaultFreeProbabilities:
    def test_single_version_closed_form(self, small_model: FaultModel):
        assert prob_fault_free_version(small_model) == pytest.approx(
            float(np.prod(1 - small_model.p))
        )

    def test_pair_closed_form(self, small_model: FaultModel):
        assert prob_fault_free_pair(small_model) == pytest.approx(
            float(np.prod(1 - small_model.p**2))
        )

    def test_r_versions_generalisation(self, small_model: FaultModel):
        assert prob_fault_free_r_versions(small_model, 1) == prob_fault_free_version(small_model)
        assert prob_fault_free_r_versions(small_model, 2) == prob_fault_free_pair(small_model)
        assert prob_fault_free_r_versions(small_model, 3) == pytest.approx(
            float(np.prod(1 - small_model.p**3))
        )

    def test_r_versions_rejects_bad_count(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            prob_fault_free_r_versions(small_model, 0)

    def test_complement_relations(self, small_model: FaultModel):
        assert prob_any_fault(small_model) == pytest.approx(
            1 - prob_fault_free_version(small_model)
        )
        assert prob_any_common_fault(small_model) == pytest.approx(
            1 - prob_fault_free_pair(small_model)
        )

    def test_matches_poisson_binomial(self, small_model: FaultModel):
        assert prob_fault_free_version(small_model) == pytest.approx(
            fault_count_distribution(small_model, 1).prob_zero()
        )
        assert prob_fault_free_pair(small_model) == pytest.approx(
            fault_count_distribution(small_model, 2).prob_zero()
        )


class TestRiskRatio:
    def test_eq10_closed_form(self, small_model: FaultModel):
        p = small_model.p
        expected = (1 - np.prod(1 - p**2)) / (1 - np.prod(1 - p))
        assert risk_ratio(small_model) == pytest.approx(expected)

    def test_never_exceeds_one(self, small_model, random_model, homogeneous_model):
        for model in (small_model, random_model, homogeneous_model):
            assert risk_ratio(model) <= 1.0 + 1e-12

    def test_single_fault_ratio_is_p(self):
        # With one fault the ratio is p^2 / p = p.
        model = FaultModel(p=np.array([0.3]), q=np.array([0.1]))
        assert risk_ratio(model) == pytest.approx(0.3)

    def test_degenerate_all_zero(self):
        model = FaultModel(p=np.array([0.0, 0.0]), q=np.array([0.1, 0.1]))
        assert risk_ratio(model) == 1.0

    def test_all_certain_faults(self):
        model = FaultModel(p=np.array([1.0, 1.0]), q=np.array([0.1, 0.1]))
        assert risk_ratio(model) == pytest.approx(1.0)

    def test_more_versions_reduce_ratio(self, small_model: FaultModel):
        assert risk_ratio(small_model, 3) < risk_ratio(small_model, 2)

    def test_smaller_probabilities_give_more_gain(self):
        # The qualitative Appendix B statement: proportionally smaller p_i
        # (better process) means a smaller risk ratio (bigger gain).
        base = FaultModel(p=np.array([0.2, 0.1, 0.05]), q=np.array([0.1, 0.1, 0.1]))
        better = base.scaled(0.5)
        assert risk_ratio(better) < risk_ratio(base)


class TestSuccessRatio:
    def test_footnote_closed_form(self, small_model: FaultModel):
        assert success_ratio(small_model) == pytest.approx(float(np.prod(1 + small_model.p)))

    def test_at_least_one(self, small_model, random_model):
        for model in (small_model, random_model):
            assert success_ratio(model) >= 1.0

    def test_infinite_when_fault_certain(self):
        model = FaultModel(p=np.array([1.0]), q=np.array([0.1]))
        assert success_ratio(model) == float("inf")

    def test_increases_when_any_p_increases(self, small_model: FaultModel):
        # The footnote notes this ratio increases if any p_i increases.
        increased = small_model.with_probability(0, small_model.p[0] * 2)
        assert success_ratio(increased) > success_ratio(small_model)


class TestExpectedCommonFaults:
    def test_values(self, small_model: FaultModel):
        assert expected_common_faults(small_model, 1) == pytest.approx(small_model.p.sum())
        assert expected_common_faults(small_model, 2) == pytest.approx((small_model.p**2).sum())

    def test_rejects_bad_versions(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            expected_common_faults(small_model, 0)


class TestFaultCountDistribution:
    def test_distribution_probabilities(self, small_model: FaultModel):
        np.testing.assert_allclose(
            fault_count_distribution(small_model, 2).probabilities, small_model.p**2
        )

    def test_rejects_bad_versions(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            fault_count_distribution(small_model, 0)
