"""Tests for the PFD moments (paper eqs. (1)-(3), (5)-(8))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import (
    expected_fault_count,
    pfd_moments,
    r_version_mean,
    r_version_std,
    r_version_variance,
    single_version_mean,
    single_version_std,
    single_version_variance,
    two_version_mean,
    two_version_std,
    two_version_variance,
)


class TestEquationOne:
    def test_single_version_mean_formula(self, small_model: FaultModel):
        expected = float(np.sum(small_model.p * small_model.q))
        assert single_version_mean(small_model) == pytest.approx(expected)

    def test_two_version_mean_formula(self, small_model: FaultModel):
        expected = float(np.sum(small_model.p**2 * small_model.q))
        assert two_version_mean(small_model) == pytest.approx(expected)

    def test_hand_computed_values(self):
        model = FaultModel(p=np.array([0.5, 0.1]), q=np.array([0.2, 0.4]))
        assert single_version_mean(model) == pytest.approx(0.5 * 0.2 + 0.1 * 0.4)
        assert two_version_mean(model) == pytest.approx(0.25 * 0.2 + 0.01 * 0.4)


class TestEquationTwo:
    def test_single_version_variance_formula(self, small_model: FaultModel):
        p, q = small_model.p, small_model.q
        assert single_version_variance(small_model) == pytest.approx(
            float(np.sum(p * (1 - p) * q**2))
        )

    def test_two_version_variance_formula(self, small_model: FaultModel):
        p, q = small_model.p, small_model.q
        assert two_version_variance(small_model) == pytest.approx(
            float(np.sum(p**2 * (1 - p**2) * q**2))
        )

    def test_std_is_sqrt_of_variance(self, small_model: FaultModel):
        assert single_version_std(small_model) == pytest.approx(
            np.sqrt(single_version_variance(small_model))
        )
        assert two_version_std(small_model) == pytest.approx(
            np.sqrt(two_version_variance(small_model))
        )


class TestRVersionGeneralisation:
    def test_r_equals_one_and_two_match_specialised(self, small_model: FaultModel):
        assert r_version_mean(small_model, 1) == single_version_mean(small_model)
        assert r_version_mean(small_model, 2) == two_version_mean(small_model)
        assert r_version_variance(small_model, 1) == single_version_variance(small_model)
        assert r_version_variance(small_model, 2) == two_version_variance(small_model)

    def test_mean_decreases_with_more_versions(self, small_model: FaultModel):
        means = [r_version_mean(small_model, r) for r in range(1, 5)]
        assert all(earlier > later for earlier, later in zip(means, means[1:]))

    def test_three_version_formula(self):
        model = FaultModel(p=np.array([0.5]), q=np.array([0.1]))
        assert r_version_mean(model, 3) == pytest.approx(0.5**3 * 0.1)
        assert r_version_std(model, 3) == pytest.approx(
            np.sqrt(0.125 * (1 - 0.125)) * 0.1
        )

    def test_rejects_bad_version_count(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            r_version_mean(small_model, 0)
        with pytest.raises(ValueError):
            r_version_variance(small_model, -1)


class TestPfdMoments:
    def test_container_consistency(self, small_model: FaultModel):
        moments = pfd_moments(small_model, 2)
        assert moments.mean == two_version_mean(small_model)
        assert moments.variance == two_version_variance(small_model)
        assert moments.std == pytest.approx(two_version_std(small_model))

    def test_bound(self, small_model: FaultModel):
        moments = pfd_moments(small_model, 1)
        assert moments.bound(2.33) == pytest.approx(moments.mean + 2.33 * moments.std)


class TestExpectedFaultCount:
    def test_single_version(self, small_model: FaultModel):
        assert expected_fault_count(small_model, 1) == pytest.approx(small_model.p.sum())

    def test_pair(self, small_model: FaultModel):
        assert expected_fault_count(small_model, 2) == pytest.approx((small_model.p**2).sum())

    def test_rejects_bad_versions(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            expected_fault_count(small_model, 0)


class TestAgainstExactDistribution:
    def test_moments_match_exact_distribution(self, small_model: FaultModel):
        from repro.core.pfd_distribution import exact_pfd_distribution

        for versions in (1, 2, 3):
            distribution = exact_pfd_distribution(small_model, versions, max_support=None)
            moments = pfd_moments(small_model, versions)
            assert distribution.mean() == pytest.approx(moments.mean, rel=1e-12)
            assert distribution.variance() == pytest.approx(moments.variance, rel=1e-10)
