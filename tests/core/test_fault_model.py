"""Tests for the fault-creation model parameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultClass, FaultModel


class TestFaultClass:
    def test_valid(self):
        fault = FaultClass(probability=0.1, impact=0.01, name="x")
        assert fault.probability == 0.1
        assert fault.impact == 0.01

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultClass(probability=1.5, impact=0.1)

    def test_rejects_bad_impact(self):
        with pytest.raises(ValueError):
            FaultClass(probability=0.5, impact=-0.1)


class TestValidation:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            FaultModel(p=np.array([0.1, 0.2]), q=np.array([0.1]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FaultModel(p=np.array([]), q=np.array([]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FaultModel(p=np.array([1.2]), q=np.array([0.1]))
        with pytest.raises(ValueError):
            FaultModel(p=np.array([0.5]), q=np.array([-0.1]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            FaultModel(p=np.array([np.nan]), q=np.array([0.1]))

    def test_strict_mode_rejects_q_sum_above_one(self):
        with pytest.raises(ValueError):
            FaultModel(p=np.array([0.1, 0.1]), q=np.array([0.6, 0.6]))

    def test_non_strict_mode_accepts_q_sum_above_one(self):
        model = FaultModel(p=np.array([0.1, 0.1]), q=np.array([0.6, 0.6]), strict=False)
        assert model.n == 2

    def test_default_names(self, small_model: FaultModel):
        assert FaultModel(p=np.array([0.1]), q=np.array([0.2])).names == ("fault_1",)
        assert small_model.names == ("alpha", "beta", "gamma")

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError):
            FaultModel(p=np.array([0.1]), q=np.array([0.2]), names=("a", "b"))


class TestProperties:
    def test_n_and_len(self, small_model: FaultModel):
        assert small_model.n == 3
        assert len(small_model) == 3

    def test_p_max_min(self, small_model: FaultModel):
        assert small_model.p_max == pytest.approx(0.05)
        assert small_model.p_min == pytest.approx(0.01)

    def test_fault_classes_roundtrip(self, small_model: FaultModel):
        classes = small_model.fault_classes()
        rebuilt = FaultModel.from_fault_classes(classes)
        np.testing.assert_allclose(rebuilt.p, small_model.p)
        np.testing.assert_allclose(rebuilt.q, small_model.q)
        assert rebuilt.names == small_model.names

    def test_from_fault_classes_rejects_empty(self):
        with pytest.raises(ValueError):
            FaultModel.from_fault_classes([])


class TestConstructors:
    def test_homogeneous(self):
        model = FaultModel.homogeneous(5, probability=0.1, impact=0.05)
        assert model.n == 5
        assert np.all(model.p == 0.1)
        assert np.all(model.q == 0.05)

    def test_homogeneous_rejects_zero_faults(self):
        with pytest.raises(ValueError):
            FaultModel.homogeneous(0, 0.1, 0.1)

    def test_random_respects_ranges(self, rng):
        model = FaultModel.random(rng, n=100, p_range=(0.01, 0.2), total_impact=0.5)
        assert model.n == 100
        assert np.all(model.p >= 0.01) and np.all(model.p <= 0.2)
        assert model.q.sum() == pytest.approx(0.5)

    def test_random_rejects_bad_parameters(self, rng):
        with pytest.raises(ValueError):
            FaultModel.random(rng, n=0)
        with pytest.raises(ValueError):
            FaultModel.random(rng, n=5, p_range=(0.5, 0.1))
        with pytest.raises(ValueError):
            FaultModel.random(rng, n=5, total_impact=0.0)
        with pytest.raises(ValueError):
            FaultModel.random(rng, n=5, impact_dispersion=-1.0)

    def test_from_regions_analytic(self):
        from repro.demandspace.profiles import ProductProfile
        from repro.demandspace.regions import BoxRegion
        from repro.demandspace.space import ContinuousDemandSpace

        space = ContinuousDemandSpace.unit_square()
        profile = ProductProfile.uniform(space)
        regions = [
            BoxRegion(np.array([0.0, 0.0]), np.array([0.5, 0.5])),
            BoxRegion(np.array([0.5, 0.5]), np.array([1.0, 1.0])),
        ]
        model = FaultModel.from_regions([0.1, 0.2], regions, profile)
        np.testing.assert_allclose(model.q, [0.25, 0.25])

    def test_from_regions_length_mismatch(self):
        from repro.demandspace.profiles import ProductProfile
        from repro.demandspace.space import ContinuousDemandSpace

        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        with pytest.raises(ValueError):
            FaultModel.from_regions([0.1], [], profile)


class TestDerivedModels:
    def test_scaled(self, small_model: FaultModel):
        scaled = small_model.scaled(0.5)
        np.testing.assert_allclose(scaled.p, small_model.p * 0.5)
        np.testing.assert_allclose(scaled.q, small_model.q)

    def test_scaled_rejects_overflow(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            small_model.scaled(25.0)

    def test_scaled_rejects_negative(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            small_model.scaled(-0.1)

    def test_with_probability(self, small_model: FaultModel):
        changed = small_model.with_probability(1, 0.5)
        assert changed.p[1] == 0.5
        assert small_model.p[1] == 0.02  # original untouched

    def test_with_probability_rejects_bad_index(self, small_model: FaultModel):
        with pytest.raises(IndexError):
            small_model.with_probability(7, 0.5)

    def test_with_impact(self, small_model: FaultModel):
        changed = small_model.with_impact(0, 0.01)
        assert changed.q[0] == 0.01

    def test_subset(self, small_model: FaultModel):
        subset = small_model.subset([0, 2])
        assert subset.n == 2
        assert subset.names == ("alpha", "gamma")

    def test_subset_rejects_empty(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            small_model.subset([])

    def test_merged(self, small_model: FaultModel):
        merged = small_model.merged(small_model)
        assert merged.n == 6
        np.testing.assert_allclose(merged.p[:3], small_model.p)

    def test_merge_faults_probability_and_impact(self, small_model: FaultModel):
        merged = small_model.merge_faults([0, 1], name="combined")
        assert merged.n == 2
        combined_index = merged.names.index("combined")
        expected_probability = 1.0 - (1 - 0.05) * (1 - 0.02)
        assert merged.p[combined_index] == pytest.approx(expected_probability)
        assert merged.q[combined_index] == pytest.approx(1e-4 + 5e-4)

    def test_merge_faults_rejects_single_index(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            small_model.merge_faults([1])

    def test_merge_faults_rejects_out_of_range(self, small_model: FaultModel):
        with pytest.raises(IndexError):
            small_model.merge_faults([0, 9])


class TestSerialisation:
    def test_roundtrip(self, small_model: FaultModel):
        rebuilt = FaultModel.from_dict(small_model.to_dict())
        np.testing.assert_allclose(rebuilt.p, small_model.p)
        np.testing.assert_allclose(rebuilt.q, small_model.q)
        assert rebuilt.names == small_model.names
        assert rebuilt.strict == small_model.strict
