"""Tests for the exact PFD distribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.no_common_faults import prob_fault_free_pair, prob_fault_free_version
from repro.core.pfd_distribution import (
    exact_pfd_distribution,
    pfd_exceedance_probability,
    pfd_percentile,
    prob_pfd_zero,
)


class TestExactDistribution:
    def test_two_fault_enumeration(self):
        model = FaultModel(p=np.array([0.5, 0.2]), q=np.array([0.1, 0.3]))
        distribution = exact_pfd_distribution(model, 1, max_support=None)
        np.testing.assert_allclose(distribution.support, [0.0, 0.1, 0.3, 0.4])
        np.testing.assert_allclose(
            distribution.probabilities, [0.5 * 0.8, 0.5 * 0.8, 0.5 * 0.2, 0.5 * 0.2]
        )

    def test_mean_and_variance_match_moments(self, small_model, homogeneous_model):
        for model in (small_model, homogeneous_model):
            for versions in (1, 2):
                distribution = exact_pfd_distribution(model, versions, max_support=None)
                moments = pfd_moments(model, versions)
                assert distribution.mean() == pytest.approx(moments.mean, rel=1e-12, abs=1e-15)
                assert distribution.variance() == pytest.approx(moments.variance, rel=1e-10, abs=1e-18)

    def test_prob_zero_matches_fault_free_probability(self, small_model: FaultModel):
        single = exact_pfd_distribution(small_model, 1, max_support=None)
        pair = exact_pfd_distribution(small_model, 2, max_support=None)
        assert single.prob_zero() == pytest.approx(prob_fault_free_version(small_model))
        assert pair.prob_zero() == pytest.approx(prob_fault_free_pair(small_model))

    def test_collapsed_distribution_preserves_mean(self, random_model: FaultModel):
        collapsed = exact_pfd_distribution(random_model, 1, max_support=256)
        assert collapsed.support.size <= 256
        assert collapsed.mean() == pytest.approx(pfd_moments(random_model, 1).mean, rel=1e-9)

    def test_rejects_bad_versions(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            exact_pfd_distribution(small_model, 0)


class TestExceedanceAndPercentile:
    def test_exceedance_simple_case(self):
        model = FaultModel(p=np.array([0.5]), q=np.array([0.2]))
        assert pfd_exceedance_probability(model, 0.1, 1) == pytest.approx(0.5)
        assert pfd_exceedance_probability(model, 0.1, 2) == pytest.approx(0.25)
        assert pfd_exceedance_probability(model, 0.3, 1) == pytest.approx(0.0)

    def test_exceedance_at_zero_threshold(self, small_model: FaultModel):
        assert pfd_exceedance_probability(small_model, 0.0, 1) == pytest.approx(
            1 - prob_fault_free_version(small_model)
        )

    def test_exceedance_rejects_negative_threshold(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            pfd_exceedance_probability(small_model, -0.1)

    def test_percentile_monotone_in_level(self, small_model: FaultModel):
        levels = [0.5, 0.9, 0.99, 0.999]
        values = [pfd_percentile(small_model, level, 1) for level in levels]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_two_version_percentile_below_single(self, random_model: FaultModel):
        assert pfd_percentile(random_model, 0.99, 2, max_support=512) <= pfd_percentile(
            random_model, 0.99, 1, max_support=512
        )


class TestProbPfdZero:
    def test_ignores_zero_impact_faults(self):
        model = FaultModel(p=np.array([0.5, 0.3]), q=np.array([0.0, 0.1]))
        # Only the second fault can make the PFD positive.
        assert prob_pfd_zero(model, 1) == pytest.approx(0.7)

    def test_all_zero_impact(self):
        model = FaultModel(p=np.array([0.5]), q=np.array([0.0]))
        assert prob_pfd_zero(model, 1) == 1.0

    def test_matches_distribution(self, small_model: FaultModel):
        distribution = exact_pfd_distribution(small_model, 2, max_support=None)
        assert prob_pfd_zero(small_model, 2) == pytest.approx(distribution.prob_zero())

    def test_rejects_bad_versions(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            prob_pfd_zero(small_model, 0)
