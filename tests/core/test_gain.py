"""Tests for the diversity-gain summary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.gain import diversity_gain_summary
from repro.core.moments import single_version_mean, two_version_mean
from repro.core.no_common_faults import risk_ratio


class TestDiversityGainSummary:
    def test_headline_values(self, small_model: FaultModel):
        summary = diversity_gain_summary(small_model, confidence=0.99)
        assert summary.mean_single == pytest.approx(single_version_mean(small_model))
        assert summary.mean_pair == pytest.approx(two_version_mean(small_model))
        assert summary.mean_ratio == pytest.approx(
            two_version_mean(small_model) / single_version_mean(small_model)
        )
        assert summary.risk_ratio == pytest.approx(risk_ratio(small_model))
        assert summary.k_factor == pytest.approx(2.3263, abs=1e-3)

    def test_guaranteed_bounds_hold(self, small_model, random_model, homogeneous_model):
        for model in (small_model, random_model, homogeneous_model):
            summary = diversity_gain_summary(model)
            assert summary.mean_ratio <= summary.guaranteed_mean_ratio + 1e-12
            assert summary.bound_ratio <= summary.guaranteed_bound_ratio + 1e-12

    def test_beta_factor_equals_mean_ratio(self, small_model: FaultModel):
        summary = diversity_gain_summary(small_model)
        assert summary.beta_factor == summary.mean_ratio

    def test_independence_is_optimistic(self, small_model, random_model):
        # The EL/LM re-derivation: mu_2 >= mu_1^2 for any non-degenerate model.
        for model in (small_model, random_model):
            summary = diversity_gain_summary(model)
            assert summary.mean_pair >= summary.independence_mean
            assert summary.independence_is_optimistic

    def test_independence_not_optimistic_for_degenerate_model(self):
        # With a single certain fault whose failure region covers the whole
        # demand space, the system mean and the independence prediction coincide.
        model = FaultModel(p=np.array([1.0]), q=np.array([1.0]))
        summary = diversity_gain_summary(model)
        assert summary.mean_pair == pytest.approx(summary.independence_mean)
        assert not summary.independence_is_optimistic

    def test_as_dict_contains_all_keys(self, small_model: FaultModel):
        data = diversity_gain_summary(small_model).as_dict()
        for key in (
            "mean_single",
            "mean_pair",
            "mean_ratio",
            "risk_ratio",
            "bound_ratio",
            "guaranteed_mean_ratio",
            "guaranteed_bound_ratio",
            "beta_factor",
            "independence_is_optimistic",
        ):
            assert key in data

    def test_rejects_bad_confidence(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            diversity_gain_summary(small_model, confidence=1.0)

    def test_degenerate_all_zero_model(self):
        model = FaultModel(p=np.array([0.0, 0.0]), q=np.array([0.1, 0.1]))
        summary = diversity_gain_summary(model)
        assert summary.mean_ratio == 1.0
        assert summary.risk_ratio == 1.0
