"""Tests for the Section 5 normal-approximation machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import std_gain_factor
from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.normal_approximation import (
    berry_esseen_error,
    bound_difference,
    bound_gain_ratio,
    bound_ratio_proportional_sweep,
    bound_ratio_single_fault_sweep,
    normal_approximation,
    worked_example_bounds,
)


class TestNormalApproximation:
    def test_matches_moments(self, small_model: FaultModel):
        for versions in (1, 2):
            approximation = normal_approximation(small_model, versions)
            moments = pfd_moments(small_model, versions)
            assert approximation.mean == pytest.approx(moments.mean)
            assert approximation.std == pytest.approx(moments.std)

    def test_bound_for_paper_confidence_levels(self, small_model: FaultModel):
        approximation = normal_approximation(small_model, 1)
        bound_99 = approximation.bound_for_confidence(0.99)
        assert bound_99 == pytest.approx(approximation.mean + 2.3263 * approximation.std, rel=1e-3)


class TestBoundGainRatio:
    def test_definition(self, small_model: FaultModel):
        k = 2.33
        single = pfd_moments(small_model, 1)
        pair = pfd_moments(small_model, 2)
        expected = pair.bound(k) / single.bound(k)
        assert bound_gain_ratio(small_model, k) == pytest.approx(expected)

    def test_bounded_by_guaranteed_factor(self, small_model, random_model, homogeneous_model):
        # Eq. (12): the actual bound ratio never exceeds sqrt(pmax(1+pmax)).
        for model in (small_model, random_model, homogeneous_model):
            for k in (0.5, 1.0, 2.33):
                assert bound_gain_ratio(model, k) <= std_gain_factor(model.p_max) + 1e-12

    def test_k_zero_is_mean_ratio(self, small_model: FaultModel):
        single = pfd_moments(small_model, 1)
        pair = pfd_moments(small_model, 2)
        assert bound_gain_ratio(small_model, 0.0) == pytest.approx(pair.mean / single.mean)

    def test_degenerate_zero_model(self):
        model = FaultModel(p=np.array([0.0]), q=np.array([0.1]))
        assert bound_gain_ratio(model, 1.0) == 1.0

    def test_rejects_negative_k(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            bound_gain_ratio(small_model, -1.0)


class TestBoundDifference:
    def test_positive_for_all_models(self, small_model, random_model):
        for model in (small_model, random_model):
            assert bound_difference(model, 2.33) > 0.0

    def test_increases_with_any_p_increase(self, small_model: FaultModel):
        # Section 5.2: measured as a difference, the gain improves with any
        # increase in any of the p_i.
        for index in range(small_model.n):
            increased = small_model.with_probability(index, min(small_model.p[index] * 3, 1.0))
            assert bound_difference(increased, 1.0) > bound_difference(small_model, 1.0)

    def test_rejects_negative_k(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            bound_difference(small_model, -0.5)


class TestWorkedExample:
    def test_section_51_numbers(self):
        example = worked_example_bounds(mu_1=0.01, sigma_1=0.001, p_max=0.1, k=1.0)
        assert example.single_version_bound == pytest.approx(0.011)
        # Paper: "our upper bound is 0.001 ... if we use our first formula
        # above" (rounded to one significant figure).
        assert example.two_version_bound_from_moments == pytest.approx(0.00133, abs=5e-5)
        # "but a more modest 0.004 if we use the second formula."
        assert example.two_version_bound_from_bound == pytest.approx(0.00365, abs=1e-4)
        assert example.improvement_from_moments > 8.0
        assert example.improvement_from_bound == pytest.approx(3.0, abs=0.05)

    def test_improvement_factors_infinite_when_bounds_zero(self):
        example = worked_example_bounds(mu_1=0.01, sigma_1=0.0, p_max=0.0, k=1.0)
        assert example.improvement_from_moments == float("inf")
        assert example.improvement_from_bound == float("inf")


class TestBerryEsseen:
    def test_error_decreases_with_more_faults(self):
        few = FaultModel.homogeneous(10, probability=0.05, impact=0.01)
        many = FaultModel.homogeneous(1000, probability=0.05, impact=0.0005)
        assert berry_esseen_error(many, 1) < berry_esseen_error(few, 1)

    def test_rejects_bad_versions(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            berry_esseen_error(small_model, 0)


class TestSweeps:
    def test_proportional_sweep_monotone_conjecture(self, small_model: FaultModel):
        # Section 5.2 conjecture: the bound ratio improves (decreases) as the
        # process improves proportionally, i.e. is non-decreasing in k.
        sweep = bound_ratio_proportional_sweep(small_model, np.linspace(0.1, 1.0, 19), 2.33)
        assert sweep.ratio_is_monotone_nondecreasing(atol=1e-10)

    def test_single_fault_sweep_can_be_non_monotone(self):
        # Section 5.2 conjecture: a single-fault improvement may increase or
        # decrease the bound-ratio gain.
        model = FaultModel(p=np.array([0.3, 0.6]), q=np.array([0.05, 0.05]))
        sweep = bound_ratio_single_fault_sweep(model, 0, np.linspace(0.01, 0.99, 99), 2.33)
        assert not sweep.ratio_is_monotone_nondecreasing()

    def test_sweep_rejects_bad_k(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            bound_ratio_proportional_sweep(small_model, [0.0, 0.5], 1.0)
