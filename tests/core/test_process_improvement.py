"""Tests for the process-improvement analysis (Section 4.2, Appendices A and B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.no_common_faults import risk_ratio
from repro.core.process_improvement import (
    proportional_improvement_derivative,
    risk_ratio_gradient,
    risk_ratio_partial_derivative,
    risk_ratio_proportional_sweep,
    risk_ratio_single_fault_sweep,
    single_fault_reversal_point,
    two_fault_reversal_point,
)


def _numeric_partial(model: FaultModel, index: int, step: float = 1e-7) -> float:
    up = risk_ratio(model.with_probability(index, model.p[index] + step))
    down = risk_ratio(model.with_probability(index, model.p[index] - step))
    return (up - down) / (2 * step)


class TestPartialDerivative:
    def test_matches_numeric_differentiation(self, small_model, two_fault_model, random_model):
        for model in (small_model, two_fault_model, random_model):
            for index in range(min(model.n, 5)):
                analytic = risk_ratio_partial_derivative(model, index)
                numeric = _numeric_partial(model, index)
                assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_gradient_collects_all_partials(self, small_model: FaultModel):
        gradient = risk_ratio_gradient(small_model)
        assert gradient.shape == (small_model.n,)
        for index in range(small_model.n):
            assert gradient[index] == pytest.approx(
                risk_ratio_partial_derivative(small_model, index)
            )

    def test_rejects_bad_index(self, small_model: FaultModel):
        with pytest.raises(IndexError):
            risk_ratio_partial_derivative(small_model, 10)

    def test_rejects_all_zero_model(self):
        model = FaultModel(p=np.array([0.0, 0.0]), q=np.array([0.1, 0.1]))
        with pytest.raises(ValueError):
            risk_ratio_partial_derivative(model, 0)

    def test_sign_can_be_negative(self):
        # Appendix A headline: the derivative can be negative, i.e. improving a
        # single fault class can reduce the gain from diversity.
        model = FaultModel(p=np.array([0.05, 0.5]), q=np.array([0.1, 0.1]))
        assert risk_ratio_partial_derivative(model, 0) < 0.0

    def test_sign_can_be_positive(self):
        model = FaultModel(p=np.array([0.4, 0.5]), q=np.array([0.1, 0.1]))
        assert risk_ratio_partial_derivative(model, 0) > 0.0


class TestTwoFaultReversalPoint:
    def test_derivative_vanishes_at_reversal_point(self):
        for p_other in (0.1, 0.3, 0.5, 0.8):
            p_star = two_fault_reversal_point(p_other)
            model = FaultModel(p=np.array([p_star, p_other]), q=np.array([0.1, 0.1]))
            assert risk_ratio_partial_derivative(model, 0) == pytest.approx(0.0, abs=1e-10)

    def test_reversal_point_for_half(self):
        # p_2 = 0.5 -> p_1* = 0.5 (sqrt(3) - 1.5) / 0.75 ~= 0.1547.
        assert two_fault_reversal_point(0.5) == pytest.approx(0.154700538, abs=1e-8)

    def test_derivative_signs_around_reversal(self):
        p_other = 0.5
        p_star = two_fault_reversal_point(p_other)
        below = FaultModel(p=np.array([p_star * 0.5, p_other]), q=np.array([0.1, 0.1]))
        above = FaultModel(p=np.array([p_star * 1.5, p_other]), q=np.array([0.1, 0.1]))
        assert risk_ratio_partial_derivative(below, 0) < 0.0
        assert risk_ratio_partial_derivative(above, 0) > 0.0

    def test_ratio_is_minimised_at_reversal_point(self):
        p_other = 0.5
        p_star = two_fault_reversal_point(p_other)
        values = np.linspace(0.01, 0.99, 199)
        ratios = [
            risk_ratio(FaultModel(p=np.array([v, p_other]), q=np.array([0.1, 0.1])))
            for v in values
        ]
        minimiser = values[int(np.argmin(ratios))]
        assert minimiser == pytest.approx(p_star, abs=0.01)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            two_fault_reversal_point(0.0)
        with pytest.raises(ValueError):
            two_fault_reversal_point(1.0)


class TestGeneralReversalPoint:
    def test_matches_closed_form_for_two_faults(self, two_fault_model: FaultModel):
        numeric = single_fault_reversal_point(two_fault_model, 0)
        assert numeric == pytest.approx(two_fault_reversal_point(0.5), abs=1e-9)

    def test_exists_for_three_fault_model(self):
        model = FaultModel(p=np.array([0.2, 0.3, 0.4]), q=np.array([0.1, 0.1, 0.1]))
        root = single_fault_reversal_point(model, 0)
        assert root is not None
        at_root = model.with_probability(0, root)
        assert risk_ratio_partial_derivative(at_root, 0) == pytest.approx(0.0, abs=1e-9)

    def test_rejects_bad_index(self, two_fault_model: FaultModel):
        with pytest.raises(IndexError):
            single_fault_reversal_point(two_fault_model, 5)


class TestProportionalImprovement:
    def test_derivative_non_negative_appendix_b(self, small_model, two_fault_model, random_model):
        for model in (small_model, two_fault_model, random_model):
            for k in (0.25, 0.5, 0.9):
                assert proportional_improvement_derivative(model, k) >= -1e-12

    def test_derivative_matches_numeric(self, two_fault_model: FaultModel):
        k, step = 0.7, 1e-7
        numeric = (
            risk_ratio(two_fault_model.scaled(k + step))
            - risk_ratio(two_fault_model.scaled(k - step))
        ) / (2 * step)
        assert proportional_improvement_derivative(two_fault_model, k) == pytest.approx(
            numeric, rel=1e-4
        )

    def test_rejects_non_positive_k(self, two_fault_model: FaultModel):
        with pytest.raises(ValueError):
            proportional_improvement_derivative(two_fault_model, 0.0)


class TestSweeps:
    def test_proportional_sweep_is_monotone(self, small_model: FaultModel):
        sweep = risk_ratio_proportional_sweep(small_model, np.linspace(0.1, 1.0, 19))
        assert sweep.ratio_is_monotone_nondecreasing()
        # Reliability itself still improves as k decreases.
        assert np.all(np.diff(sweep.risk_single) >= -1e-12)

    def test_proportional_sweep_rejects_bad_k(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            risk_ratio_proportional_sweep(small_model, [0.5, 0.0])

    def test_single_fault_sweep_shows_reversal(self):
        model = FaultModel(p=np.array([0.3, 0.5]), q=np.array([0.1, 0.1]))
        sweep = risk_ratio_single_fault_sweep(model, 0, np.linspace(0.01, 0.99, 99))
        assert not sweep.ratio_is_monotone_nondecreasing()
        assert sweep.argmin_ratio() == pytest.approx(two_fault_reversal_point(0.5), abs=0.02)

    def test_single_fault_sweep_records_risks(self, small_model: FaultModel):
        values = np.linspace(0.01, 0.2, 5)
        sweep = risk_ratio_single_fault_sweep(small_model, 0, values)
        assert sweep.risk_single.shape == values.shape
        # Single-version risk increases with the swept probability.
        assert np.all(np.diff(sweep.risk_single) > 0)
