"""Tests for the study runner: caching, invalidation, parallelism, seeding."""

from __future__ import annotations

import copy
import json

import pytest

from repro.studies import StudySpec, plan_study, point_seed_entropy, run_study


def base_spec_dict() -> dict:
    return {
        "name": "runner-study",
        "base": {"scenario": "many-small-faults"},
        "sweep": {
            "grid": [
                {"name": "n", "values": [10, 20]},
                {"name": "p_scale", "values": [0.5, 1.0]},
            ]
        },
        "methods": [
            {"name": "moments"},
            {"name": "montecarlo", "replications": 500},
        ],
        "seed": 42,
    }


@pytest.fixture
def spec() -> StudySpec:
    return StudySpec.from_dict(base_spec_dict())


def table_bytes(result, tmp_path, label):
    directory = tmp_path / label
    paths = result.save(directory)
    return {fmt: paths[fmt].read_bytes() for fmt in ("json", "jsonl", "csv")}


class TestRunStudy:
    def test_produces_one_record_per_point(self, spec, tmp_path):
        result = run_study(spec, cache_dir=str(tmp_path / "cache"))
        assert len(result) == spec.point_count == 8
        assert result.summary["computed"] == 8
        assert result.summary["cached"] == 0
        methods = {record["method"] for record in result.records}
        assert methods == {"moments", "montecarlo"}

    def test_warm_run_recomputes_nothing_and_is_byte_identical(self, spec, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_study(spec, cache_dir=cache_dir)
        warm = run_study(spec, cache_dir=cache_dir)
        assert warm.summary["computed"] == 0
        assert warm.summary["cached"] == cold.summary["computed"]
        assert warm.records == cold.records
        assert table_bytes(cold, tmp_path, "cold") == table_bytes(warm, tmp_path, "warm")

    def test_axis_edit_recomputes_only_new_points(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        data = base_spec_dict()
        cold = run_study(StudySpec.from_dict(data), cache_dir=cache_dir)
        edited = copy.deepcopy(data)
        edited["sweep"]["grid"][1]["values"] = [0.5, 1.0, 1.5]  # one new p_scale
        incremental = run_study(StudySpec.from_dict(edited), cache_dir=cache_dir)
        assert incremental.summary["points"] == 12
        assert incremental.summary["cached"] == cold.summary["computed"]
        # only the 2 (n) x 1 (new p_scale) x 2 (methods) new points ran
        assert incremental.summary["computed"] == 4
        # the surviving rows are exactly the cold rows
        cold_ids = {record["point_id"] for record in cold.records}
        reused = [r for r in incremental.records if r["point_id"] in cold_ids]
        assert sorted(json.dumps(r, sort_keys=True) for r in reused) == sorted(
            json.dumps(r, sort_keys=True) for r in cold.records
        )

    def test_study_rename_does_not_invalidate(self, spec, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_study(spec, cache_dir=cache_dir)
        renamed = StudySpec.from_dict({**base_spec_dict(), "name": "other-name"})
        warm = run_study(renamed, cache_dir=cache_dir)
        assert warm.summary["computed"] == 0

    def test_seed_change_invalidates_only_stochastic_methods(self, spec, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_study(spec, cache_dir=cache_dir)
        reseeded = StudySpec.from_dict({**base_spec_dict(), "seed": 43})
        rerun = run_study(reseeded, cache_dir=cache_dir)
        # montecarlo consumes the seed (4 points recomputed); moments does not.
        assert rerun.summary["computed"] == 4
        assert rerun.summary["cached"] == 4

    def test_parallel_equals_sequential(self, spec, tmp_path):
        sequential = run_study(spec, cache_dir=str(tmp_path / "c1"), jobs=1)
        parallel = run_study(spec, cache_dir=str(tmp_path / "c2"), jobs=3)
        assert parallel.records == sequential.records

    def test_no_cache_dir_disables_caching(self, spec):
        result = run_study(spec, cache_dir=None)
        assert result.summary["computed"] == result.summary["evaluations"]
        assert result.summary["cache_dir"] is None

    def test_force_recomputes_but_matches_cache(self, spec, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_study(spec, cache_dir=cache_dir)
        forced = run_study(spec, cache_dir=cache_dir, force=True)
        assert forced.summary["computed"] == cold.summary["computed"]
        assert forced.records == cold.records

    def test_progress_callback_sees_every_evaluation(self, spec, tmp_path):
        calls = []
        run_study(
            spec,
            cache_dir=str(tmp_path / "cache"),
            progress=lambda done, total, computed: calls.append((done, total, computed)),
        )
        assert calls[-1][0] == calls[-1][1]

    def test_invalid_jobs_rejected(self, spec):
        with pytest.raises(ValueError, match="jobs"):
            run_study(spec, jobs=0)

    def test_bad_axis_fails_before_any_evaluation(self, tmp_path):
        data = base_spec_dict()
        data["sweep"]["grid"].append({"name": "bogus_knob", "values": [1]})
        with pytest.raises(ValueError, match="bogus_knob"):
            run_study(StudySpec.from_dict(data), cache_dir=str(tmp_path / "cache"))
        assert not (tmp_path / "cache").exists() or not any((tmp_path / "cache").iterdir())


class TestBatchedDispatch:
    def test_groups_points_by_batchable_axis(self, spec, tmp_path):
        # 2 n-values x 2 methods = 4 groups; the p_scale axis batches away.
        result = run_study(spec, cache_dir=str(tmp_path / "cache"))
        assert result.summary["batch"] is True
        assert result.summary["dispatched_tasks"] == 4
        assert result.summary["computed"] == 8

    def test_no_batch_dispatches_per_point(self, spec, tmp_path):
        result = run_study(spec, cache_dir=str(tmp_path / "cache"), batch=False)
        assert result.summary["batch"] is False
        assert result.summary["dispatched_tasks"] == 8

    def test_batched_results_do_not_depend_on_grouping(self, tmp_path):
        # A point computed alongside cached siblings (singleton group) must
        # match the same point computed in a full cold group: group streams
        # are content-keyed (scale *envelope*, not membership), so the same
        # developments are sampled either way.  Only float summation order
        # may differ -- agreement is to ~1e-15 relative, not bitwise.
        data = base_spec_dict()
        cold = run_study(StudySpec.from_dict(data), cache_dir=str(tmp_path / "c1"))
        trimmed = copy.deepcopy(data)
        trimmed["sweep"]["grid"][1]["values"] = [0.5]  # drop the 1.0 point
        partial = run_study(StudySpec.from_dict(trimmed), cache_dir=str(tmp_path / "c2"))
        cold_rows = {row["point_id"]: row for row in cold.records}
        compared = 0
        for row in partial.records:
            if row["method"] != "montecarlo":
                continue
            sibling = cold_rows[row["point_id"]]
            assert set(row) == set(sibling)
            for key, value in row.items():
                if isinstance(value, float):
                    assert value == pytest.approx(sibling[key], rel=1e-12), key
                else:
                    assert value == sibling[key], key
            compared += 1
        assert compared == 2

    def test_partially_cached_group_reproduces_cold_values(self, tmp_path):
        # The shared structure a batched kernel derives from the sweep (the
        # Monte Carlo demand envelope, the exact lattice span) must come
        # from the *planned* group, not the cache-miss subset: recomputing
        # one evicted point must reproduce its cold value exactly even when
        # the scale set spans a power-of-two envelope bracket (p_scale > 1
        # is where a miss-only envelope would sample a different world).
        data = base_spec_dict()
        data["sweep"]["grid"][1]["values"] = [1.5, 3.0]  # envelope bracket 4
        spec = StudySpec.from_dict(data)
        cache_dir = tmp_path / "cache"
        cold = run_study(spec, cache_dir=str(cache_dir))
        # Evict exactly one montecarlo point's cache entry.
        evicted = next(
            entry for entry in plan_study(spec)
            if entry.point.method.name == "montecarlo"
            and entry.point.param_dict()["p_scale"] == 3.0
        )
        from repro.studies import ResultCache

        ResultCache(cache_dir).path_for(evicted.digest).unlink()
        partial = run_study(spec, cache_dir=str(cache_dir))
        assert partial.summary["computed"] == 1
        assert partial.records == cold.records

    def test_warm_cache_identical_across_modes(self, spec, tmp_path):
        cache_dir = str(tmp_path / "cache")
        batched = run_study(spec, cache_dir=cache_dir)
        scalar_warm = run_study(spec, cache_dir=cache_dir, batch=False)
        assert scalar_warm.summary["computed"] == 0
        assert scalar_warm.records == batched.records

    def test_cli_no_batch_flag(self, tmp_path, capsys):
        import json as json_module

        from repro.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json_module.dumps(base_spec_dict()), encoding="utf-8")
        arguments = [
            "study", "run", str(spec_file),
            "--cache-dir", str(tmp_path / "cache"),
            "--output-dir", str(tmp_path / "out"),
            "--quiet", "--no-batch",
        ]
        assert main(arguments) == 0
        summary = json_module.loads(capsys.readouterr().out)
        assert summary["batch"] is False


class TestSeeding:
    def test_seeds_are_content_keyed_not_positional(self):
        # Reversing an axis must not change any point's seed entropy.
        data = base_spec_dict()
        forward = {
            entry.digest: point_seed_entropy(StudySpec.from_dict(data), entry.digest)
            for entry in plan_study(StudySpec.from_dict(data))
        }
        data["sweep"]["grid"][0]["values"] = [20, 10]
        reversed_spec = StudySpec.from_dict(data)
        backward = {
            entry.digest: point_seed_entropy(reversed_spec, entry.digest)
            for entry in plan_study(reversed_spec)
        }
        assert forward == backward

    def test_factory_defaults_and_one_value_axis_hash_identically(self):
        # Scenario-factory defaults are materialised into the cache key, so
        # sweeping the default value explicitly changes nothing.
        common = {"name": "x", "base": {"scenario": "many-small-faults"}, "methods": [{"name": "moments"}]}
        implicit = StudySpec.from_dict(common)
        explicit = StudySpec.from_dict(
            {**common, "sweep": {"grid": [{"name": "n", "values": [200]}, {"name": "p_scale", "values": [1.0]}]}}
        )
        assert plan_study(implicit)[0].digest == plan_study(explicit)[0].digest

    def test_evaluation_failure_reports_point_and_keeps_completed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        data = base_spec_dict()
        data["sweep"]["grid"][1]["values"] = [0.5, 50.0]  # 50x pushes p_i above 1
        with pytest.raises(ValueError) as excinfo:
            run_study(StudySpec.from_dict(data), cache_dir=cache_dir, jobs=2)
        message = str(excinfo.value)
        assert "p_scale=50" in message and "point " in message
        # The good half of the sweep was evaluated and cached despite the failure.
        data["sweep"]["grid"][1]["values"] = [0.5]
        salvaged = run_study(StudySpec.from_dict(data), cache_dir=cache_dir)
        assert salvaged.summary["computed"] == 0

    def test_static_option_and_one_value_axis_hash_identically(self):
        # The same evaluation expressed two ways must share a cache key.
        common = {"name": "x", "base": {"scenario": "high-quality"}}
        as_option = StudySpec.from_dict(
            {**common, "methods": [{"name": "bounds", "confidence": 0.95}]}
        )
        as_axis = StudySpec.from_dict(
            {
                **common,
                "sweep": {"grid": [{"name": "confidence", "values": [0.95]}]},
                "methods": [{"name": "bounds"}],
            }
        )
        assert plan_study(as_option)[0].digest == plan_study(as_axis)[0].digest

    def test_ignored_axes_share_evaluations(self, tmp_path):
        # A confidence sweep must not multiply the moments evaluations.
        data = base_spec_dict()
        data["sweep"]["zip"] = [{"name": "confidence", "values": [0.9, 0.99]}]
        data["methods"] = [{"name": "moments"}, {"name": "bounds"}]
        spec = StudySpec.from_dict(data)
        result = run_study(spec, cache_dir=str(tmp_path / "cache"))
        assert result.summary["points"] == 16
        # moments ignores confidence: 4 grid combos; bounds consumes it: 8.
        assert result.summary["evaluations"] == 12
        moments_rows = [r for r in result.records if r["method"] == "moments"]
        by_confidence = {r["confidence"]: r["point_id"] for r in moments_rows if r["n"] == 10 and r["p_scale"] == 0.5}
        assert len(set(by_confidence.values())) == 1  # same evaluation, both rows


class TestKeepGoing:
    """``keep_going``: failures become typed rows, warm re-runs repair them."""

    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        from repro import faults

        faults.clear()
        yield
        faults.clear()

    @pytest.fixture
    def flaky_spec(self, small_model) -> StudySpec:
        return StudySpec.from_dict(
            {
                "name": "keep-going",
                "base": {"model": small_model.to_dict()},
                "sweep": {"grid": [{"name": "p_scale", "values": [0.5, 1.0, 1.5]}]},
                "methods": [{"name": "moments"}],
                "seed": 1,
            }
        )

    def _arm_second_point_failure(self):
        from repro import faults

        # Sequential in-process evaluation (batch=False, jobs=1): the second
        # evaluated point -- and only it -- raises.
        faults.inject(
            "studies.point", error=RuntimeError, message="boom", every=2, times=1,
            export_env=False,
        )

    def test_strict_mode_still_raises(self, flaky_spec):
        self._arm_second_point_failure()
        with pytest.raises(ValueError, match="1 of 3 evaluation\\(s\\) failed"):
            run_study(flaky_spec, batch=False)

    def test_failures_become_typed_error_rows(self, flaky_spec, tmp_path):
        self._arm_second_point_failure()
        result = run_study(
            flaky_spec, cache_dir=str(tmp_path / "cache"), batch=False, keep_going=True
        )
        assert result.summary["keep_going"] is True
        assert result.summary["failed"] == 1
        assert len(result) == 3
        failed = [record for record in result.records if "status" in record]
        assert len(failed) == 1
        assert failed[0]["status"] == "error"
        assert failed[0]["error_type"] == "RuntimeError"
        assert failed[0]["error"] == "boom"
        assert "mean_system" not in failed[0]
        healthy = [record for record in result.records if "status" not in record]
        assert len(healthy) == 2
        assert all("mean_system" in record for record in healthy)

    def test_error_rows_round_trip_through_the_table_writers(self, flaky_spec, tmp_path):
        self._arm_second_point_failure()
        result = run_study(flaky_spec, batch=False, keep_going=True)
        paths = result.save(tmp_path / "out")
        rows = json.loads(paths["json"].read_text(encoding="utf-8"))
        assert sum(1 for row in rows if row.get("status") == "error") == 1
        import csv

        with open(paths["csv"], newline="", encoding="utf-8") as handle:
            table = list(csv.DictReader(handle))
        assert {"status", "error_type", "error"} <= set(table[0])
        error_rows = [row for row in table if row["status"] == "error"]
        assert len(error_rows) == 1
        assert error_rows[0]["error_type"] == "RuntimeError"
        assert error_rows[0]["mean_system"] == ""  # no metrics on an error row
        healthy_rows = [row for row in table if row["status"] == ""]
        assert all(row["mean_system"] for row in healthy_rows)

    def test_warm_rerun_recomputes_only_the_failed_points(self, flaky_spec, tmp_path):
        from repro import faults

        cache_dir = str(tmp_path / "cache")
        self._arm_second_point_failure()
        broken = run_study(flaky_spec, cache_dir=cache_dir, batch=False, keep_going=True)
        assert broken.summary["failed"] == 1
        faults.clear()
        repaired = run_study(flaky_spec, cache_dir=cache_dir, batch=False, keep_going=True)
        assert repaired.summary["failed"] == 0
        assert repaired.summary["cached"] == 2
        assert repaired.summary["computed"] == 1
        reference = run_study(flaky_spec, batch=False)
        assert repaired.records == reference.records
