"""Old -> new dispatch compatibility: deprecated shims and warm-cache identity.

The unified-API refactor moved method dispatch from per-consumer tables into
:class:`repro.api.MethodRegistry`.  Two things must survive it byte for byte:

* the deprecated entry points (``repro.studies.evaluate_point``, the
  ``repro simulate`` subcommand) keep producing identical output, now with a
  ``DeprecationWarning``;
* study cache digests: the digests below were recorded by running
  ``plan_study`` on the *pre-registry* implementation (commit f421fea), so a
  warm cache written by the old dispatch must be served untouched by the new
  one.
"""

from __future__ import annotations

import json

import pytest

from repro.studies import (
    MethodSpec,
    ResultCache,
    StudySpec,
    evaluate_point,
    evaluate_study_point,
    plan_study,
    run_study,
)

COMPAT_SPEC = {
    "name": "compat-study",
    "base": {"scenario": "high-quality"},
    "sweep": {"grid": [{"name": "p_scale", "values": [0.5, 1.0]}]},
    "methods": [
        {"name": "moments"},
        {"name": "bounds", "confidence": 0.95},
        {"name": "exact", "max_support": 256},
        {"name": "montecarlo", "replications": 400},
    ],
    "seed": 11,
}

#: (method, digest) per planned point, recorded on the pre-registry
#: implementation.  Any change here silently invalidates every user's warm
#: study cache -- treat a failure as a release blocker, not a snapshot bump.
PRE_REGISTRY_DIGESTS = [
    ("moments", "95671c1b406e600e2dfa51178dd5fa126dcba61a1d45162a35247749767dec74"),
    ("bounds", "e8a5fab6e7f8f97adaf8a37ab978a2951b2d058f2eebe426b06a46e3b5477aa3"),
    ("exact", "3072e1182ab031a5cd86957289c908b76f90499efef4b0537d3c64e98e51c98b"),
    ("montecarlo", "36bdadc16f2903f7e819235a410e3a7b0c3f3098a04df4b7ef67b4f2ce417ea1"),
    ("moments", "64c9bb0607aca7976650ee05b79369130d1a8f31f0c4a400e7ed91e738f0dac8"),
    ("bounds", "bf4384720c99274130ac338bc0eeb782c9774b1814808fc576b0c2032e1a7fe8"),
    ("exact", "56ad05581586ef56105556cf5cc472e106a6a0373aa20ed9d968bfb3881ad020"),
    ("montecarlo", "4778c89e277dbed29be5579a97c467b88dfe2184676edc8d51415a7536845de3"),
]


class TestWarmCacheIdentity:
    def test_digests_are_byte_identical_to_pre_registry_dispatch(self):
        planned = plan_study(StudySpec.from_dict(COMPAT_SPEC))
        got = [(entry.point.method.name, entry.digest) for entry in planned]
        assert got == PRE_REGISTRY_DIGESTS

    def test_cache_written_by_old_dispatch_is_served_not_recomputed(self, tmp_path):
        # Simulate a cache populated by the old implementation: entries live
        # under the recorded digests.  The new dispatch must hit all of them.
        cache_dir = tmp_path / "cache"
        spec = StudySpec.from_dict(COMPAT_SPEC)
        cold = run_study(spec, cache_dir=str(cache_dir))
        assert cold.summary["computed"] == len(PRE_REGISTRY_DIGESTS)
        stored = sorted(path.stem for path in cache_dir.glob("*/*.json"))
        assert stored == sorted(digest for _, digest in PRE_REGISTRY_DIGESTS)
        warm = run_study(spec, cache_dir=str(cache_dir))
        assert warm.summary["computed"] == 0
        assert warm.records == cold.records

    def test_corrupt_old_entry_degrades_to_recomputation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = PRE_REGISTRY_DIGESTS[0][1]
        path = cache.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        result = run_study(StudySpec.from_dict(COMPAT_SPEC), cache_dir=str(tmp_path / "cache"))
        assert result.summary["computed"] == len(PRE_REGISTRY_DIGESTS)


class TestBatchedDispatchCompat:
    """The batched (grouped) fast path must not disturb cache identity.

    Digests are computed by ``plan_study`` before any dispatch decision, so
    batch mode cannot change them; these tests pin the consequences -- a
    warm cache written by either mode is served untouched by the other, and
    methods without a batched kernel produce byte-identical records in both
    modes.
    """

    def test_plan_digests_do_not_depend_on_batch_mode(self):
        # plan_study is dispatch-agnostic; the recorded pre-registry digests
        # above are therefore also the batched-mode digests.
        planned = plan_study(StudySpec.from_dict(COMPAT_SPEC))
        assert [entry.digest for entry in planned] == [
            digest for _, digest in PRE_REGISTRY_DIGESTS
        ]

    def test_cache_written_by_scalar_mode_served_by_batched_mode(self, tmp_path):
        spec = StudySpec.from_dict(COMPAT_SPEC)
        cache_dir = str(tmp_path / "cache")
        scalar_cold = run_study(spec, cache_dir=cache_dir, batch=False)
        batched_warm = run_study(spec, cache_dir=cache_dir, batch=True)
        assert batched_warm.summary["computed"] == 0
        assert batched_warm.records == scalar_cold.records

    def test_cache_written_by_batched_mode_served_by_scalar_mode(self, tmp_path):
        spec = StudySpec.from_dict(COMPAT_SPEC)
        cache_dir = str(tmp_path / "cache")
        batched_cold = run_study(spec, cache_dir=cache_dir, batch=True)
        scalar_warm = run_study(spec, cache_dir=cache_dir, batch=False)
        assert scalar_warm.summary["computed"] == 0
        assert scalar_warm.records == batched_cold.records

    def test_methods_without_batched_kernel_are_bitwise_identical(self, tmp_path):
        # moments/bounds have no batched kernel: the grouped dispatch runs
        # the same per-point evaluation with the same content-keyed seeds,
        # so fresh records must match the scalar mode byte for byte.
        spec_dict = {**COMPAT_SPEC, "methods": [{"name": "moments"}, {"name": "bounds"}]}
        spec = StudySpec.from_dict(spec_dict)
        scalar = run_study(spec, cache_dir=str(tmp_path / "scalar"), batch=False)
        batched = run_study(spec, cache_dir=str(tmp_path / "batched"), batch=True)
        assert batched.records == scalar.records

    def test_group_worker_arguments_survive_pickling(self):
        # jobs > 1 ships one pickle per group; on single-core machines the
        # pool is skipped, so exercise the pickle boundary directly.
        import pickle

        from repro.studies.runner import _evaluate_group, _plan_groups

        spec = StudySpec.from_dict(COMPAT_SPEC)
        planned = plan_study(spec)
        pending = {entry.digest: index for index, entry in enumerate(planned)}
        groups = _plan_groups(spec, planned, pending)
        assert groups, "compat spec must produce at least one group"
        members, arguments = groups[0]
        outcomes = _evaluate_group(pickle.loads(pickle.dumps(arguments)))
        assert len(outcomes) == len(members)
        assert all(status == "ok" for status, _ in outcomes)


class TestDeprecatedShims:
    def test_evaluate_point_warns_and_matches_new_output(self, small_model):
        base = {"model": small_model.to_dict()}
        method = MethodSpec(name="montecarlo", options=(("replications", 500),))
        fresh = evaluate_study_point(base, {}, method, (7, 99))
        with pytest.warns(DeprecationWarning, match="evaluate_point is deprecated"):
            legacy = evaluate_point(base, {}, method, (7, 99))
        assert legacy == fresh

    def test_simulate_cli_warns_and_output_is_unchanged(self, tmp_path, capsys, small_model):
        from repro.cli import main
        from repro.montecarlo.engine import MonteCarloEngine

        model_file = tmp_path / "model.json"
        model_file.write_text(json.dumps(small_model.to_dict()), encoding="utf-8")
        arguments = ["simulate", "--model", str(model_file), "--replications", "3000", "--seed", "9"]
        with pytest.warns(DeprecationWarning, match="repro simulate"):
            assert main(arguments) == 0
        printed = json.loads(capsys.readouterr().out)
        expected = MonteCarloEngine(small_model).simulate_paired(3000, rng=9).summary()
        assert printed == expected
