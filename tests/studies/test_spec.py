"""Tests for study spec parsing, validation and expansion."""

from __future__ import annotations

import json

import pytest

from repro.studies import MethodSpec, StudySpec, SweepAxis, expand_points


def minimal_spec(**overrides) -> dict:
    data = {
        "name": "test-study",
        "base": {"scenario": "high-quality"},
        "methods": [{"name": "moments"}],
    }
    data.update(overrides)
    return data


class TestSweepAxis:
    def test_explicit_values(self):
        axis = SweepAxis.from_dict({"name": "n", "values": [10, 20, 30]})
        assert axis.values == (10, 20, 30)

    def test_linspace_includes_endpoints(self):
        axis = SweepAxis.from_dict({"name": "p_scale", "linspace": [0.5, 1.0, 3]})
        assert axis.values == pytest.approx((0.5, 0.75, 1.0))

    def test_logspace_is_geometric(self):
        axis = SweepAxis.from_dict({"name": "p_scale", "logspace": [0.01, 1.0, 3]})
        assert axis.values == pytest.approx((0.01, 0.1, 1.0))

    def test_endpoints_land_exactly(self):
        # Cache keys hash these floats, so the documented endpoints must be
        # bit-exact, not off by an ulp.
        axis = SweepAxis.from_dict({"name": "x", "linspace": [-9.8159012289123, 7.6246771784431076, 8]})
        assert axis.values[0] == -9.8159012289123
        assert axis.values[-1] == 7.6246771784431076
        log_axis = SweepAxis.from_dict({"name": "y", "logspace": [0.125, 1.0, 9]})
        assert log_axis.values[0] == 0.125
        assert log_axis.values[-1] == 1.0
        assert all(isinstance(value, float) for value in log_axis.values)

    def test_single_point_ranges(self):
        assert SweepAxis.from_dict({"name": "x", "linspace": [2.0, 5.0, 1]}).values == (2.0,)
        assert SweepAxis.from_dict({"name": "y", "logspace": [0.5, 2.0, 1]}).values == (0.5,)

    def test_range_has_python_semantics(self):
        axis = SweepAxis.from_dict({"name": "n", "range": [50, 250, 50]})
        assert axis.values == (50, 100, 150, 200)

    def test_requires_exactly_one_generator(self):
        with pytest.raises(ValueError, match="exactly one"):
            SweepAxis.from_dict({"name": "n", "values": [1], "range": [0, 5, 1]})
        with pytest.raises(ValueError, match="exactly one"):
            SweepAxis.from_dict({"name": "n"})

    def test_rejects_empty_and_non_scalar_values(self):
        with pytest.raises(ValueError, match="no values"):
            SweepAxis.from_dict({"name": "n", "values": []})
        with pytest.raises(ValueError, match="JSON scalars"):
            SweepAxis.from_dict({"name": "n", "values": [[1, 2]]})

    def test_rejects_non_positive_logspace(self):
        with pytest.raises(ValueError, match="positive"):
            SweepAxis.from_dict({"name": "x", "logspace": [0.0, 1.0, 3]})


class TestMethodSpec:
    def test_options_normalised_with_defaults(self):
        method = MethodSpec.from_dict({"name": "montecarlo", "replications": 500})
        options = dict(method.options)
        assert options["replications"] == 500
        assert options["versions"] == 2  # default filled in

    def test_equivalent_specs_compare_equal(self):
        # Defaults are materialised, so spelling a default out changes nothing.
        assert MethodSpec.from_dict({"name": "moments"}) == MethodSpec.from_dict(
            {"name": "moments", "versions": 2}
        )

    def test_unknown_method_and_option_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            MethodSpec.from_dict({"name": "frobnicate"})
        with pytest.raises(ValueError, match="does not accept option"):
            MethodSpec.from_dict({"name": "moments", "replications": 10})


class TestStudySpec:
    def test_from_dict_roundtrip(self):
        spec = StudySpec.from_dict(
            minimal_spec(
                sweep={"grid": [{"name": "n", "values": [10, 20]}]},
                description="d",
                seed=7,
            )
        )
        again = StudySpec.from_dict(spec.to_dict())
        assert again == spec

    def test_point_count(self):
        spec = StudySpec.from_dict(
            minimal_spec(
                sweep={
                    "grid": [
                        {"name": "n", "values": [10, 20]},
                        {"name": "p_scale", "values": [0.5, 1.0, 1.5]},
                    ],
                    "zip": [
                        {"name": "confidence", "values": [0.9, 0.99]},
                        {"name": "versions", "values": [2, 3]},
                    ],
                },
                methods=[{"name": "moments"}, {"name": "normal"}],
            )
        )
        assert spec.point_count == 2 * 3 * 2 * 2
        assert len(expand_points(spec)) == spec.point_count

    def test_zip_axes_must_match_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            StudySpec.from_dict(
                minimal_spec(
                    sweep={
                        "zip": [
                            {"name": "a_scale", "values": [1, 2]},
                            {"name": "b_scale", "values": [1, 2, 3]},
                        ]
                    }
                )
            )

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StudySpec.from_dict(
                minimal_spec(
                    sweep={
                        "grid": [{"name": "n", "values": [1]}],
                        "zip": [{"name": "n", "values": [2]}],
                    }
                )
            )

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown study keys"):
            StudySpec.from_dict(minimal_spec(sweeps={}))
        with pytest.raises(ValueError, match="unknown sweep keys"):
            StudySpec.from_dict(minimal_spec(sweep={"cross": []}))

    def test_base_is_required_and_exclusive(self):
        with pytest.raises(ValueError, match="base"):
            StudySpec.from_dict({"name": "x", "methods": [{"name": "moments"}]})
        with pytest.raises(ValueError, match="exactly one"):
            StudySpec.from_dict(
                minimal_spec(base={"scenario": "high-quality", "model": {"p": [0.1], "q": [0.1]}})
            )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            StudySpec.from_dict(minimal_spec(base={"scenario": "nope"}))

    def test_model_file_is_inlined(self, tmp_path, small_model):
        model_path = tmp_path / "model.json"
        model_path.write_text(json.dumps(small_model.to_dict()), encoding="utf-8")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(minimal_spec(base={"model_file": "model.json"})), encoding="utf-8"
        )
        spec = StudySpec.from_file(spec_path)
        # The base holds the model *content*, so cache keys survive file moves.
        assert dict(spec.base)["model"] == small_model.to_dict()

    def test_invalid_inline_model_fails_at_parse_time(self):
        with pytest.raises(ValueError):
            StudySpec.from_dict(minimal_spec(base={"model": {"p": [2.0], "q": [0.1]}}))

    def test_needs_at_least_one_method(self):
        with pytest.raises(ValueError, match="at least one method"):
            StudySpec.from_dict(minimal_spec(methods=[]))

    def test_wrong_shapes_raise_value_error_not_type_error(self):
        # Valid JSON of the wrong shape must produce clean ValueErrors so the
        # CLI can turn them into exit-code-2 messages.
        with pytest.raises(ValueError, match="JSON object"):
            StudySpec.from_dict([1, 2])
        with pytest.raises(ValueError, match="JSON object"):
            StudySpec.from_dict(minimal_spec(base="high-quality"))
        with pytest.raises(ValueError, match="'sweep'"):
            StudySpec.from_dict(minimal_spec(sweep=[{"name": "n", "values": [1]}]))
        with pytest.raises(ValueError, match="must be a list"):
            StudySpec.from_dict(minimal_spec(sweep={"grid": {"name": "n", "values": [1]}}))
        with pytest.raises(ValueError, match="must be a list"):
            StudySpec.from_dict(
                minimal_spec(sweep={"grid": [{"name": "n", "values": 5}]})
            )
        with pytest.raises(ValueError, match="must be a list"):
            StudySpec.from_dict(
                minimal_spec(sweep={"grid": [{"name": "n", "values": "abc"}]})
            )
        with pytest.raises(ValueError, match="method entry"):
            StudySpec.from_dict(minimal_spec(methods=["moments"]))
        with pytest.raises(ValueError, match="'methods' must be a list"):
            StudySpec.from_dict(minimal_spec(methods="moments"))
        with pytest.raises(ValueError, match="'seed' must be an integer"):
            StudySpec.from_dict(minimal_spec(seed="lucky"))
        with pytest.raises(ValueError, match="linspace"):
            StudySpec.from_dict(
                minimal_spec(sweep={"grid": [{"name": "x_scale", "linspace": [0.0, 1.0]}]})
            )

    def test_non_integer_generator_arguments_fail_loudly(self):
        # int() truncation would silently run (and cache) a different sweep.
        with pytest.raises(ValueError, match="step.*integer"):
            SweepAxis.from_dict({"name": "n", "range": [0, 10, 2.5]})
        with pytest.raises(ValueError, match="num.*integer"):
            SweepAxis.from_dict({"name": "x", "logspace": [0.1, 1.0, 4.9]})
        assert SweepAxis.from_dict({"name": "n", "range": [0, 10, 2.0]}).values == (0, 2, 4, 6, 8)

    def test_name_must_be_filename_safe(self):
        with pytest.raises(ValueError, match="file name"):
            StudySpec.from_dict(minimal_spec(name="gain/v2"))

    def test_model_file_must_contain_an_object(self, tmp_path):
        model_path = tmp_path / "list.json"
        model_path.write_text("[0.05, 0.02]", encoding="utf-8")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(minimal_spec(base={"model_file": "list.json"})), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="JSON object"):
            StudySpec.from_file(spec_path)

    def test_docstring_example_spec_is_valid(self):
        # The module docstring is the primary documentation; its example
        # must parse and plan cleanly.
        from repro.studies import plan_study
        from repro.studies import spec as spec_module

        docstring = spec_module.__doc__
        example = docstring[docstring.index("{") : docstring.index("``grid`` axes") ]
        example = example[: example.rindex("}") + 1]
        parsed = StudySpec.from_dict(json.loads(example))
        assert len(plan_study(parsed)) == parsed.point_count


class TestExpansion:
    def test_grid_order_is_deterministic(self):
        spec = StudySpec.from_dict(
            minimal_spec(
                sweep={"grid": [{"name": "n", "values": [10, 20]}]},
                methods=[{"name": "moments"}, {"name": "bounds"}],
            )
        )
        points = expand_points(spec)
        labels = [(point.param_dict()["n"], point.method.name) for point in points]
        assert labels == [(10, "moments"), (10, "bounds"), (20, "moments"), (20, "bounds")]

    def test_zip_advances_in_lockstep(self):
        spec = StudySpec.from_dict(
            minimal_spec(
                sweep={
                    "zip": [
                        {"name": "p_scale", "values": [0.5, 1.0]},
                        {"name": "q_scale", "values": [2.0, 1.0]},
                    ]
                }
            )
        )
        pairs = [
            (point.param_dict()["p_scale"], point.param_dict()["q_scale"])
            for point in expand_points(spec)
        ]
        assert pairs == [(0.5, 2.0), (1.0, 1.0)]
