"""Tests for per-point model resolution and method evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.pfd_distribution import exact_pfd_distribution
from repro.experiments.scenarios import many_small_faults_scenario
from repro.studies import MethodSpec, evaluate_study_point, resolve_model, split_point_params

SCENARIO_BASE = {"scenario": "many-small-faults"}


def inline_base(model: FaultModel) -> dict:
    return {"model": model.to_dict()}


class TestSplitPointParams:
    def test_partitions_by_layer(self):
        method = MethodSpec(name="montecarlo")
        factory, transforms, overrides, ignored = split_point_params(
            SCENARIO_BASE,
            {"n": 50, "model_seed": 3, "p_scale": 0.5, "replications": 100},
            method,
        )
        assert factory == {"n": 50, "rng": 3}
        assert transforms == {"p_scale": 0.5}
        assert overrides == {"replications": 100}
        assert ignored == {}

    def test_other_methods_axes_are_ignorable(self):
        method = MethodSpec(name="moments")
        *_, ignored = split_point_params(
            SCENARIO_BASE, {"confidence": 0.9}, method, ignorable={"confidence"}
        )
        assert ignored == {"confidence": 0.9}

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="not understood"):
            split_point_params(SCENARIO_BASE, {"bogus": 1}, MethodSpec(name="moments"))

    def test_inline_base_has_no_factory_params(self, small_model):
        with pytest.raises(ValueError, match="not understood"):
            split_point_params(inline_base(small_model), {"n": 5}, MethodSpec(name="moments"))


class TestResolveModel:
    def test_scenario_with_overrides(self):
        model = resolve_model(SCENARIO_BASE, {"n": 37, "rng": 5}, {})
        assert model.n == 37
        np.testing.assert_allclose(model.p, many_small_faults_scenario(37, rng=5).p)

    def test_p_scale_uses_appendix_b_scaling(self, small_model):
        model = resolve_model(inline_base(small_model), {}, {"p_scale": 0.5})
        np.testing.assert_allclose(model.p, small_model.p * 0.5)
        np.testing.assert_allclose(model.q, small_model.q)

    def test_q_scale_scales_impacts(self, small_model):
        model = resolve_model(inline_base(small_model), {}, {"q_scale": 2.0})
        np.testing.assert_allclose(model.q, small_model.q * 2.0)

    def test_negative_q_scale_rejected(self, small_model):
        with pytest.raises(ValueError, match="q_scale"):
            resolve_model(inline_base(small_model), {}, {"q_scale": -1.0})


class TestMethods:
    def test_moments_agrees_with_library(self, small_model):
        record = evaluate_study_point(inline_base(small_model), {}, MethodSpec(name="moments"), (0, 1))
        assert record["mean_single"] == pfd_moments(small_model, 1).mean
        assert record["mean_system"] == pfd_moments(small_model, 2).mean
        assert record["std_system"] == pfd_moments(small_model, 2).std

    def test_exact_agrees_with_distribution(self, small_model):
        record = evaluate_study_point(
            inline_base(small_model),
            {"max_support": 256},
            MethodSpec(name="exact", options=(("level", 0.95),)),
            (0, 1),
        )
        distribution = exact_pfd_distribution(small_model, 2, max_support=256)
        assert record["exact_mean"] == distribution.mean()
        assert record["exact_percentile"] == distribution.quantile(0.95)

    def test_exact_threshold_metric_is_optional(self, small_model):
        without = evaluate_study_point(inline_base(small_model), {}, MethodSpec(name="exact"), (0, 1))
        assert "exact_exceedance" not in without
        with_threshold = evaluate_study_point(
            inline_base(small_model),
            {},
            MethodSpec(name="exact", options=(("threshold", 1e-4),)),
            (0, 1),
        )
        assert 0.0 <= with_threshold["exact_exceedance"] <= 1.0

    def test_normal_and_bounds_are_consistent(self, small_model):
        normal = evaluate_study_point(inline_base(small_model), {}, MethodSpec(name="normal"), (0, 1))
        bounds = evaluate_study_point(inline_base(small_model), {}, MethodSpec(name="bounds"), (0, 1))
        assert normal["k_factor"] == pytest.approx(2.326, abs=5e-3)
        # The guaranteed (p_max) bound must dominate the direct system bound.
        assert bounds["guaranteed_bound_system"] >= normal["normal_bound_system"] - 1e-15
        assert bounds["p_max"] == small_model.p_max

    def test_montecarlo_is_reproducible_per_entropy(self, small_model):
        method = MethodSpec(name="montecarlo", options=(("replications", 2000),))
        first = evaluate_study_point(inline_base(small_model), {}, method, (7, 123))
        second = evaluate_study_point(inline_base(small_model), {}, method, (7, 123))
        different = evaluate_study_point(inline_base(small_model), {}, method, (7, 124))
        assert first == second
        assert first != different

    def test_montecarlo_correlation_and_versions(self, small_model):
        record = evaluate_study_point(
            inline_base(small_model),
            {"correlation": 0.5, "replications": 2000},
            MethodSpec(name="montecarlo"),
            (0, 1),
        )
        assert record["mc_correlation"] == 0.5
        assert "mc_risk_ratio" in record
        triple = evaluate_study_point(
            inline_base(small_model),
            {"versions": 3, "replications": 2000},
            MethodSpec(name="montecarlo"),
            (0, 1),
        )
        assert "mc_prob_any_fault" in triple
        assert triple["mc_mean_system"] <= record["mc_mean_single"] + 1e-12


class TestRegistryExtensibility:
    """A registered method is usable in studies with no studies/ edits."""

    def test_tail_quantile_runs_in_a_study(self, tmp_path):
        from repro.studies import StudySpec, run_study

        spec = StudySpec.from_dict(
            {
                "name": "tail-study",
                "base": {"scenario": "high-quality"},
                "sweep": {"grid": [{"name": "level", "values": [0.9, 0.999]}]},
                "methods": [{"name": "tail-quantile", "max_support": 256}],
            }
        )
        result = run_study(spec, cache_dir=str(tmp_path / "cache"))
        assert len(result) == 2
        for record in result.records:
            assert record["tail_level"] == record["level"]
            assert record["tail_quantile"] >= 0.0

    def test_freshly_registered_method_reaches_specs(self, small_model):
        from repro.api import OptionSpec, default_registry, register_method

        registry = default_registry()

        @register_method(
            "test-mean-only",
            options=(OptionSpec("versions", "int", 2),),
            description="test-only method",
        )
        def mean_only(model, options, rng):
            from repro.core.moments import pfd_moments

            return {"mean": pfd_moments(model, int(options["versions"])).mean}

        try:
            record = evaluate_study_point(
                inline_base(small_model), {}, MethodSpec(name="test-mean-only"), (0, 1)
            )
            assert record == {"mean": pfd_moments(small_model, 2).mean}
        finally:
            registry.unregister("test-mean-only")
