"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json

import pytest

from repro.studies import ResultCache, canonical_json, payload_digest


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_float_representation_is_stable(self):
        value = 0.1 + 0.2  # not exactly 0.3
        assert canonical_json({"x": value}) == canonical_json({"x": value})
        assert canonical_json({"x": value}) != canonical_json({"x": 0.3})


class TestPayloadDigest:
    def test_equal_payloads_equal_digests(self):
        a = {"params": {"n": 10, "p_scale": 0.5}, "method": {"name": "moments"}}
        b = {"method": {"name": "moments"}, "params": {"p_scale": 0.5, "n": 10}}
        assert payload_digest(a) == payload_digest(b)

    def test_any_change_changes_digest(self):
        base = {"params": {"n": 10}, "method": {"name": "moments"}, "entropy": 1}
        assert payload_digest(base) != payload_digest({**base, "entropy": 2})
        assert payload_digest(base) != payload_digest({**base, "params": {"n": 11}})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = payload_digest({"x": 1})
        assert cache.load(digest) is None
        assert digest not in cache
        cache.store(digest, {"digest": digest, "metrics": {"mean": 0.25}})
        assert digest in cache
        assert cache.load(digest)["metrics"] == {"mean": 0.25}
        assert len(cache) == 1

    def test_entries_sharded_by_prefix(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = payload_digest({"y": 2})
        cache.store(digest, {"metrics": {}})
        assert cache.path_for(digest).parent.name == digest[:2]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = payload_digest({"z": 3})
        cache.store(digest, {"metrics": {}})
        cache.path_for(digest).write_text("{not json", encoding="utf-8")
        assert cache.load(digest) is None

    def test_wrong_shaped_entry_is_a_miss(self, tmp_path):
        # Valid JSON that is not an entry (foreign file, truncated write)
        # must degrade to recomputation, not crash the runner.
        cache = ResultCache(tmp_path / "cache")
        digest = payload_digest({"z": 4})
        cache.store(digest, {"metrics": {}})
        cache.path_for(digest).write_text('["oops"]', encoding="utf-8")
        assert cache.load(digest) is None
        cache.path_for(digest).write_text('{"payload": {}}', encoding="utf-8")  # no metrics
        assert cache.load(digest) is None

    def test_store_is_atomic_no_temp_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = payload_digest({"w": 4})
        cache.store(digest, {"metrics": {"a": 1}})
        cache.store(digest, {"metrics": {"a": 2}})  # overwrite
        assert cache.load(digest)["metrics"] == {"a": 2}
        leftovers = [p for p in cache.path_for(digest).parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_stored_entries_are_valid_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = payload_digest({"v": 5})
        cache.store(digest, {"metrics": {"x": 1.5}})
        raw = cache.path_for(digest).read_text(encoding="utf-8")
        assert json.loads(raw)["metrics"]["x"] == 1.5
