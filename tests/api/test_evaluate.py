"""Tests for the top-level evaluate / evaluate_batch entry points."""

from __future__ import annotations

import numpy as np
import pytest

from repro import evaluate, evaluate_batch
from repro.api import MethodRegistry, OptionSpec, register_method
from repro.core.moments import pfd_moments
from repro.core.pfd_distribution import exact_pfd_distribution


class TestEvaluate:
    def test_moments_agree_with_library(self, small_model):
        result = evaluate(small_model, "moments")
        assert result["mean_single"] == pfd_moments(small_model, 1).mean
        assert result["mean_system"] == pfd_moments(small_model, 2).mean
        assert result.method == "moments"
        assert result.option_dict() == {"versions": 2}
        assert result.seed_entropy is None  # deterministic
        assert result.elapsed_seconds >= 0.0

    def test_tail_quantile_agrees_with_distribution(self, small_model):
        result = evaluate(
            small_model, "tail-quantile", level=0.999, threshold=1e-4, max_support=256
        )
        distribution = exact_pfd_distribution(small_model, 2, max_support=256)
        assert result["tail_quantile"] == distribution.quantile(0.999)
        assert result["tail_exceedance"] == distribution.survival(1e-4)
        assert result["tail_prob_zero"] == distribution.prob_zero()

    def test_montecarlo_reproducible_per_seed(self, small_model):
        first = evaluate(small_model, "montecarlo", seed=7, replications=2000)
        second = evaluate(small_model, "montecarlo", seed=7, replications=2000)
        different = evaluate(small_model, "montecarlo", seed=8, replications=2000)
        assert first.metrics == second.metrics
        assert first.metrics != different.metrics
        assert first.seed_entropy == (7,)

    def test_no_seed_still_means_reproducible(self, small_model):
        first = evaluate(small_model, "montecarlo", replications=1000)
        second = evaluate(small_model, "montecarlo", replications=1000)
        assert first.metrics == second.metrics

    def test_seed_spellings(self, small_model):
        by_tuple = evaluate(small_model, "montecarlo", seed=(7,), replications=1000)
        by_int = evaluate(small_model, "montecarlo", seed=7, replications=1000)
        assert by_tuple.metrics == by_int.metrics
        rng = np.random.default_rng(np.random.SeedSequence([7]))
        by_generator = evaluate(small_model, "montecarlo", seed=rng, replications=1000)
        assert by_generator.metrics == by_int.metrics
        assert by_generator.seed_entropy is None  # live generator: unrecordable

    def test_bad_seed_rejected(self, small_model):
        with pytest.raises(ValueError, match="seed must be"):
            evaluate(small_model, "montecarlo", seed=1.5)

    def test_unknown_method_and_option_rejected(self, small_model):
        with pytest.raises(ValueError, match="unknown method"):
            evaluate(small_model, "frobnicate")
        with pytest.raises(ValueError, match="does not accept option"):
            evaluate(small_model, "moments", replications=10)

    def test_custom_registry_dispatch(self, small_model):
        registry = MethodRegistry()

        @register_method(
            "mean-only",
            options=(OptionSpec("versions", "int", 2),),
            registry=registry,
        )
        def mean_only(model, options, rng):
            return {"mean": pfd_moments(model, int(options["versions"])).mean}

        result = evaluate(small_model, "mean-only", registry=registry, versions=1)
        assert result["mean"] == pfd_moments(small_model, 1).mean
        with pytest.raises(ValueError, match="unknown method 'moments'"):
            evaluate(small_model, "moments", registry=registry)

    def test_non_mapping_metrics_rejected(self, small_model):
        registry = MethodRegistry()

        @register_method("broken", registry=registry)
        def broken(model, options, rng):
            return 3.14

        with pytest.raises(TypeError, match="must return a mapping"):
            evaluate(small_model, "broken", registry=registry)


class TestEvaluateBatch:
    REQUESTS = [
        "moments",
        ("montecarlo", {"replications": 1000}),
        {"method": "tail-quantile", "level": 0.999},
    ]

    def test_results_in_request_order(self, small_model):
        results = evaluate_batch(small_model, self.REQUESTS, seed=5)
        assert [result.method for result in results] == [
            "moments", "montecarlo", "tail-quantile",
        ]

    def test_parallel_equals_sequential(self, small_model):
        sequential = evaluate_batch(small_model, self.REQUESTS, seed=5, jobs=1)
        parallel = evaluate_batch(small_model, self.REQUESTS, seed=5, jobs=3)
        assert [r.metrics for r in sequential] == [r.metrics for r in parallel]
        assert [r.options for r in sequential] == [r.options for r in parallel]

    def test_streams_are_per_request_index(self, small_model):
        # Two identical montecarlo requests in one batch must not share a stream.
        results = evaluate_batch(
            small_model,
            [("montecarlo", {"replications": 1000}), ("montecarlo", {"replications": 1000})],
            seed=5,
        )
        assert results[0].metrics != results[1].metrics
        assert results[0].seed_entropy == (5, 0)
        assert results[1].seed_entropy == (5, 1)

    def test_whole_batch_validated_before_any_evaluation(self, small_model):
        with pytest.raises(ValueError, match="does not accept option"):
            evaluate_batch(
                small_model,
                [("montecarlo", {"replications": 10_000_000}), ("moments", {"bogus": 1})],
            )

    def test_invalid_jobs_and_seed_rejected(self, small_model):
        with pytest.raises(ValueError, match="jobs"):
            evaluate_batch(small_model, ["moments"], jobs=0)
        with pytest.raises(ValueError, match="integer seed"):
            evaluate_batch(small_model, ["moments"], seed=np.random.default_rng(1))


class TestBatchCoalescing:
    """Identical work items compute once; the result fans out per request."""

    def test_deterministic_duplicates_evaluate_once(self, small_model):
        from repro.api import MethodRegistry, MethodDefinition

        calls = {"count": 0}

        def counting(model, options, rng):
            calls["count"] += 1
            return {"value": 1.0}

        registry = MethodRegistry()
        registry.register(MethodDefinition(name="counted", evaluate=counting))
        results = evaluate_batch(
            small_model, ["counted", "counted", "counted"], registry=registry
        )
        assert calls["count"] == 1
        assert len(results) == 3
        assert results[0] == results[1] == results[2]

    def test_mixed_batch_preserves_order_and_distinct_work(self, small_model):
        requests = [
            "moments",
            {"method": "tail-quantile", "level": 0.999},
            "moments",  # duplicate of request 0
            {"method": "tail-quantile", "level": 0.99},  # different options: own work
        ]
        results = evaluate_batch(small_model, requests, seed=5)
        assert [r.method for r in results] == [
            "moments", "tail-quantile", "moments", "tail-quantile",
        ]
        assert results[0] == results[2]
        assert results[1].option_dict()["level"] == 0.999
        assert results[3].option_dict()["level"] == 0.99
        assert results[1].metrics != results[3].metrics

    def test_stochastic_duplicates_keep_their_own_streams(self, small_model):
        # (seed, index) streams differ, so coalescing must never merge them.
        results = evaluate_batch(
            small_model,
            [("montecarlo", {"replications": 500})] * 2,
            seed=5,
        )
        assert results[0].seed_entropy == (5, 0)
        assert results[1].seed_entropy == (5, 1)
        assert results[0].metrics != results[1].metrics

    def test_coalescing_is_jobs_invariant(self, small_model):
        requests = ["moments", "moments", ("montecarlo", {"replications": 500}), "moments"]
        sequential = evaluate_batch(small_model, requests, seed=5, jobs=1)
        parallel = evaluate_batch(small_model, requests, seed=5, jobs=3)
        assert [r.metrics for r in sequential] == [r.metrics for r in parallel]
        assert [r.seed_entropy for r in sequential] == [r.seed_entropy for r in parallel]


class TestOptionSpellings:
    def test_options_mapping_equals_kwargs(self, small_model):
        by_kwargs = evaluate(small_model, "exact", level=0.999, max_support=256)
        by_mapping = evaluate(
            small_model, "exact", options={"level": 0.999, "max_support": 256}
        )
        assert by_kwargs.metrics == by_mapping.metrics
        assert by_kwargs.options == by_mapping.options

    def test_kwargs_win_over_mapping(self, small_model):
        result = evaluate(small_model, "exact", options={"level": 0.9}, level=0.999)
        assert result.option_dict()["level"] == 0.999

    def test_colliding_option_name_reaches_the_registry(self, small_model):
        # An option literally named "seed" must produce the registry's
        # unknown-option ValueError via the mapping spelling, not a TypeError.
        with pytest.raises(ValueError, match="does not accept option 'seed'"):
            evaluate(small_model, "moments", options={"seed": 5})

    def test_custom_registry_with_jobs_rejected(self, small_model):
        registry = MethodRegistry()
        with pytest.raises(ValueError, match="default registry"):
            evaluate_batch(small_model, [], jobs=2, registry=registry)


class TestUnregister:
    def test_unregister_roundtrip(self, small_model):
        registry = MethodRegistry()

        @register_method("temp", registry=registry)
        def temp(model, options, rng):
            return {"x": 1}

        definition = registry.unregister("temp")
        assert definition.evaluate is temp
        assert "temp" not in registry
        with pytest.raises(ValueError, match="unknown method 'temp'"):
            registry.unregister("temp")


class TestStreamIndices:
    """``stream_indices``: a sub-batch reproduces its slice of a full batch.

    This is the router's fan-out contract -- a batch split across shards,
    each sub-batch carrying its members' original positions, must be
    byte-identical to the unsplit call.
    """

    REQUESTS = [
        ("montecarlo", {"replications": 1000}),
        "moments",
        ("montecarlo", {"replications": 1000}),
        ("tail-quantile", {"level": 0.999}),
    ]

    def test_split_batch_equals_unsplit(self, small_model):
        whole = evaluate_batch(small_model, self.REQUESTS, seed=5)
        left = evaluate_batch(
            small_model, [self.REQUESTS[0], self.REQUESTS[3]], seed=5,
            stream_indices=[0, 3],
        )
        right = evaluate_batch(
            small_model, [self.REQUESTS[1], self.REQUESTS[2]], seed=5,
            stream_indices=[1, 2],
        )
        def strip(result):
            return {
                key: value
                for key, value in result.to_dict().items()
                if key != "elapsed_seconds"
            }

        reassembled = [left[0], right[0], right[1], left[1]]
        assert [strip(r) for r in reassembled] == [strip(r) for r in whole]

    def test_default_indices_are_positions(self, small_model):
        explicit = evaluate_batch(
            small_model, self.REQUESTS, seed=5, stream_indices=[0, 1, 2, 3]
        )
        implicit = evaluate_batch(small_model, self.REQUESTS, seed=5)
        assert [r.metrics for r in explicit] == [r.metrics for r in implicit]
        assert [r.seed_entropy for r in explicit] == [r.seed_entropy for r in implicit]

    def test_validation(self, small_model):
        with pytest.raises(ValueError, match="match"):
            evaluate_batch(small_model, self.REQUESTS, seed=5, stream_indices=[0])
        with pytest.raises(ValueError, match="non-negative"):
            evaluate_batch(
                small_model, self.REQUESTS, seed=5, stream_indices=[0, 1, 2, -1]
            )
        with pytest.raises(ValueError, match="non-negative"):
            evaluate_batch(
                small_model, self.REQUESTS, seed=5, stream_indices=[0, 1, 2, True]
            )
