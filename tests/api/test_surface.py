"""API-surface snapshot: the public names of ``repro`` and ``repro.api``.

Changing either surface is an intentional, reviewable act: update the
snapshot below in the same commit as the export change.  The test fails on
*any* drift -- an accidentally removed export breaks downstream users, an
accidentally added one becomes compatibility baggage.
"""

from __future__ import annotations

import repro
import repro.api

REPRO_PUBLIC_NAMES = (
    "BatchUnsupported",
    "DiversityGainSummary",
    "EvaluationRequest",
    "EvaluationResult",
    "FaultClass",
    "FaultModel",
    "IndependentDevelopmentProcess",
    "MethodDefinition",
    "MethodRegistry",
    "MonteCarloEngine",
    "OneOutOfTwoSystem",
    "OptionSpec",
    "PfdMoments",
    "PoissonBinomial",
    "SingleVersionSystem",
    "__version__",
    "confidence_bound_from_bound",
    "confidence_bound_from_moments",
    "default_registry",
    "diversity_gain_summary",
    "evaluate",
    "evaluate_batch",
    "evaluate_sweep",
    "exact_pfd_distribution",
    "fault_count_distribution",
    "mean_gain_factor",
    "normal_approximation",
    "pfd_moments",
    "pmax_gain_table",
    "prob_any_common_fault",
    "prob_any_fault",
    "prob_fault_free_pair",
    "prob_fault_free_version",
    "proportional_improvement_derivative",
    "register_batch",
    "register_method",
    "risk_ratio",
    "risk_ratio_partial_derivative",
    "single_fault_reversal_point",
    "single_version_mean",
    "single_version_std",
    "std_gain_factor",
    "success_ratio",
    "two_fault_reversal_point",
    "two_version_mean",
    "two_version_std",
)

REPRO_API_PUBLIC_NAMES = (
    "BatchUnsupported",
    "EvaluationRequest",
    "EvaluationResult",
    "MethodDefinition",
    "MethodRegistry",
    "OptionSpec",
    "default_registry",
    "evaluate",
    "evaluate_batch",
    "evaluate_sweep",
    "register_batch",
    "register_method",
)


class TestApiSurface:
    def test_repro_all_matches_snapshot(self):
        assert tuple(sorted(repro.__all__)) == REPRO_PUBLIC_NAMES

    def test_repro_api_all_matches_snapshot(self):
        assert tuple(sorted(repro.api.__all__)) == REPRO_API_PUBLIC_NAMES

    def test_every_advertised_name_exists(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
        for name in repro.api.__all__:
            assert getattr(repro.api, name, None) is not None, name

    def test_no_duplicate_exports(self):
        assert len(set(repro.__all__)) == len(repro.__all__)
        assert len(set(repro.api.__all__)) == len(repro.api.__all__)
