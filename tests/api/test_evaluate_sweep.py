"""Tests for ``repro.evaluate_sweep`` and the batched-method registry flag."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BatchUnsupported,
    OptionSpec,
    default_registry,
    evaluate,
    evaluate_sweep,
    register_batch,
    register_method,
)
from repro.api.evaluate import evaluate_sweep_outcomes

VARIATIONS = [{"p_scale": 0.25}, {"p_scale": 0.5}, {"p_scale": 1.0, "q_scale": 2.0}]


class TestRegistryFlag:
    def test_builtin_batch_support(self):
        registry = default_registry()
        assert registry.get("exact").supports_batch
        assert registry.get("tail-quantile").supports_batch
        assert registry.get("montecarlo").supports_batch
        assert not registry.get("moments").supports_batch
        assert not registry.get("bounds").supports_batch

    def test_register_batch_on_custom_method(self, small_model):
        registry = default_registry()

        @register_method("test-batchable", options=(OptionSpec("versions", "int", 2),))
        def scalar(model, options, rng):
            return {"value": float(model.p.sum())}

        try:
            assert not registry.get("test-batchable").supports_batch

            @register_batch("test-batchable")
            def batched(model, variations, options, rng):
                return [
                    {"value": float(model.p.sum() * variation["p_scale"])}
                    for variation in variations
                ]

            assert registry.get("test-batchable").supports_batch
            results = evaluate_sweep(small_model, "test-batchable", VARIATIONS)
            expected = [float(small_model.p.sum() * v["p_scale"]) for v in VARIATIONS]
            assert [result["value"] for result in results] == expected
        finally:
            registry.unregister("test-batchable")

    def test_register_batch_unknown_method_fails(self):
        with pytest.raises(ValueError, match="unknown method"):
            register_batch("no-such-method")(lambda *a: [])


class TestEvaluateSweep:
    def test_batched_exact_matches_scalar_evaluate(self, small_model):
        results = evaluate_sweep(small_model, "exact", VARIATIONS, max_support=512)
        for variation, result in zip(VARIATIONS, results):
            transformed = small_model.rescaled(
                variation.get("p_scale", 1.0), variation.get("q_scale", 1.0)
            )
            scalar = evaluate(transformed, "exact", max_support=512)
            assert result["exact_mean"] == pytest.approx(scalar["exact_mean"], rel=1e-9)
            assert result["exact_std"] == pytest.approx(scalar["exact_std"], rel=1e-9)

    def test_fallback_method_is_bitwise_identical(self, small_model):
        results = evaluate_sweep(small_model, "moments", VARIATIONS)
        for variation, result in zip(VARIATIONS, results):
            transformed = small_model.rescaled(
                variation.get("p_scale", 1.0), variation.get("q_scale", 1.0)
            )
            assert result.metric_dict() == evaluate(transformed, "moments").metric_dict()

    def test_montecarlo_sweep_is_seeded_and_reproducible(self, small_model):
        first = evaluate_sweep(
            small_model, "montecarlo", VARIATIONS, replications=2000, seed=7
        )
        second = evaluate_sweep(
            small_model, "montecarlo", VARIATIONS, replications=2000, seed=7
        )
        assert [r.metrics for r in first] == [r.metrics for r in second]
        assert first[0].seed_entropy == (7,)
        assert "mc_risk_ratio" in first[0].metric_dict()

    def test_batch_unsupported_falls_back(self, small_model):
        # correlation != 0 declines the batched kernel; the per-point
        # fallback must produce exactly what scalar evaluation produces for
        # the derived (seed, index) streams.
        results = evaluate_sweep(
            small_model,
            "montecarlo",
            VARIATIONS[:2],
            replications=500,
            correlation=0.4,
            seed=11,
        )
        for index, (variation, result) in enumerate(zip(VARIATIONS[:2], results)):
            transformed = small_model.rescaled(variation.get("p_scale", 1.0))
            scalar = evaluate(
                transformed, "montecarlo", replications=500, correlation=0.4, seed=(11, index)
            )
            assert result.metric_dict() == scalar.metric_dict()

    def test_invalid_variation_raises_with_index(self, small_model):
        with pytest.raises(ValueError, match="sweep variation 1"):
            evaluate_sweep(
                small_model, "exact", [{"p_scale": 0.5}, {"p_scale": 1e6}], max_support=256
            )
        with pytest.raises(ValueError, match="only p_scale/q_scale"):
            evaluate_sweep(small_model, "exact", [{"bogus": 1.0}])

    def test_outcomes_salvage_bad_points(self, small_model):
        outcomes = evaluate_sweep_outcomes(
            small_model,
            "exact",
            [{"p_scale": 0.5}, {"p_scale": 1e6}, {"p_scale": 1.0}],
            options={"max_support": 256},
        )
        statuses = [status for status, _ in outcomes]
        assert statuses == ["ok", "error", "ok"]
        assert "pushes some p_i above 1" in outcomes[1][1]

    def test_empty_sweep(self, small_model):
        assert evaluate_sweep(small_model, "exact", []) == []

    def test_results_align_with_variation_order(self, small_model):
        results = evaluate_sweep(small_model, "exact", VARIATIONS, max_support=256)
        means = [result["exact_mean"] for result in results]
        # p_scale 0.25 < 0.5 < (1.0 with doubled impacts): strictly ordered.
        assert means[0] < means[1] < means[2]


class TestSweepSeedEntropy:
    def test_batched_path_records_shared_entropy(self, small_model):
        results = evaluate_sweep(
            small_model, "montecarlo", VARIATIONS[:2], replications=500, seed=11
        )
        assert [r.seed_entropy for r in results] == [(11,), (11,)]

    def test_fallback_path_records_per_point_entropy(self, small_model):
        # The recorded entropy must reproduce the point's value through
        # plain evaluate(), even on the declined-kernel per-point path.
        results = evaluate_sweep(
            small_model,
            "montecarlo",
            VARIATIONS[:2],
            replications=500,
            correlation=0.3,
            seed=11,
        )
        assert [r.seed_entropy for r in results] == [(11, 0), (11, 1)]
        for variation, result in zip(VARIATIONS[:2], results):
            again = evaluate(
                small_model.rescaled(variation.get("p_scale", 1.0)),
                "montecarlo",
                replications=500,
                correlation=0.3,
                seed=result.seed_entropy,
            )
            assert again.metric_dict() == result.metric_dict()

    def test_deterministic_methods_record_no_entropy(self, small_model):
        assert all(
            r.seed_entropy is None
            for r in evaluate_sweep(small_model, "exact", VARIATIONS, max_support=256)
        )


class TestSubsetEvaluation:
    def test_q_scale_zero_tail_prob_zero(self, small_model):
        result = evaluate_sweep(
            small_model, "tail-quantile", [{"q_scale": 0.0}, {"q_scale": 1.0}], max_support=256
        )
        assert result[0]["tail_prob_zero"] == 1.0
        assert result[1]["tail_prob_zero"] < 1.0

    def test_subset_skips_unrequested_points_on_scalar_path(self, small_model):
        # A declined batched kernel must not evaluate sweep points the
        # caller did not ask for (the study runner relies on this to avoid
        # recomputing cached siblings).
        calls = []
        registry = default_registry()

        @register_method("test-counter", options=(), requires_seed=True)
        def scalar(model, options, rng):
            calls.append(float(model.p.max()))
            return {"p_max": float(model.p.max())}

        try:

            @register_batch("test-counter")
            def batched(model, variations, options, rng):
                raise BatchUnsupported("count the scalar calls instead")

            outcomes = evaluate_sweep_outcomes(
                small_model,
                "test-counter",
                [{"p_scale": k} for k in (0.25, 0.5, 1.0)],
                seed=3,
                subset=(1,),
            )
            assert len(outcomes) == 1 and outcomes[0][0] == "ok"
            assert calls == [pytest.approx(small_model.p_max * 0.5)]
        finally:
            registry.unregister("test-counter")

    def test_subset_preserves_batched_full_sweep(self, small_model):
        # Batched kernels must still see the whole sweep (shared structure),
        # returning only the requested positions.
        seen = {}
        registry = default_registry()

        @register_method("test-full-sweep", options=())
        def scalar(model, options, rng):
            return {}

        try:

            @register_batch("test-full-sweep")
            def batched(model, variations, options, rng):
                seen["count"] = len(variations)
                return [{"i": index} for index in range(len(variations))]

            outcomes = evaluate_sweep_outcomes(
                small_model,
                "test-full-sweep",
                [{"p_scale": k} for k in (0.25, 0.5, 1.0)],
                subset=(2,),
            )
            assert seen["count"] == 3
            assert outcomes == [("ok", {"i": 2})]
        finally:
            registry.unregister("test-full-sweep")


class TestBatchUnsupportedContract:
    def test_custom_batch_can_decline(self, small_model):
        registry = default_registry()

        @register_method("test-decliner", options=())
        def scalar(model, options, rng):
            return {"source": "scalar"}

        try:

            @register_batch("test-decliner")
            def batched(model, variations, options, rng):
                raise BatchUnsupported("always declines")

            results = evaluate_sweep(small_model, "test-decliner", VARIATIONS[:2])
            assert [result["source"] for result in results] == ["scalar", "scalar"]
        finally:
            registry.unregister("test-decliner")

    def test_wrong_record_count_is_an_error(self, small_model):
        registry = default_registry()

        @register_method("test-short", options=())
        def scalar(model, options, rng):
            return {}

        try:

            @register_batch("test-short")
            def batched(model, variations, options, rng):
                return [{}]

            with pytest.raises(TypeError, match="returned 1 records for 2"):
                evaluate_sweep(small_model, "test-short", VARIATIONS[:2])
        finally:
            registry.unregister("test-short")
