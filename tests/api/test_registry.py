"""Tests for the method registry: schemas, resolution and error paths."""

from __future__ import annotations

import pytest

from repro.api import (
    MethodDefinition,
    MethodRegistry,
    OptionSpec,
    default_registry,
    register_method,
)

BUILTIN_METHODS = ("bounds", "exact", "moments", "montecarlo", "normal", "tail-quantile")


def make_definition(name: str = "custom", **kwargs) -> MethodDefinition:
    defaults = dict(
        name=name,
        evaluate=lambda model, options, rng: {"value": 1.0},
        options=(OptionSpec("versions", "int", 2),),
        description="a test method",
    )
    defaults.update(kwargs)
    return MethodDefinition(**defaults)


class TestDefaultRegistry:
    def test_builtins_are_registered(self):
        assert default_registry().names() == BUILTIN_METHODS

    def test_montecarlo_is_the_only_seed_consumer(self):
        registry = default_registry()
        stochastic = tuple(d.name for d in registry if d.requires_seed)
        assert stochastic == ("montecarlo",)

    def test_schema_is_json_friendly(self):
        import json

        for definition in default_registry():
            encoded = json.dumps(definition.schema())
            assert definition.name in encoded


class TestResolveOptions:
    def test_defaults_materialised(self):
        resolved = default_registry().resolve_options("exact")
        assert resolved == {"versions": 2, "max_support": 4096, "level": 0.99, "threshold": None}

    def test_overrides_win_but_values_are_not_coerced(self):
        # Cache keys hash these values: an int given for a float option must
        # stay an int (0 != 0.0 in canonical JSON).
        resolved = default_registry().resolve_options("montecarlo", {"correlation": 0})
        assert resolved["correlation"] == 0
        assert isinstance(resolved["correlation"], int)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method 'frobnicate'"):
            default_registry().resolve_options("frobnicate")
        with pytest.raises(ValueError, match="available:"):
            default_registry().get("frobnicate")

    def test_unknown_option(self):
        with pytest.raises(ValueError, match="does not accept option 'replications'"):
            default_registry().resolve_options("moments", {"replications": 10})

    def test_wrong_option_type(self):
        registry = default_registry()
        with pytest.raises(ValueError, match="'level' expects float"):
            registry.resolve_options("exact", {"level": "high"})
        with pytest.raises(ValueError, match="'replications' expects int"):
            registry.resolve_options("montecarlo", {"replications": 10.5})
        with pytest.raises(ValueError, match="'versions' expects int"):
            registry.resolve_options("moments", {"versions": True})
        with pytest.raises(ValueError, match="must not be None"):
            registry.resolve_options("normal", {"confidence": None})
        with pytest.raises(ValueError, match="must be finite"):
            registry.resolve_options("normal", {"confidence": float("nan")})

    def test_nullable_and_numeric_widening_accepted(self):
        registry = default_registry()
        assert registry.resolve_options("exact", {"max_support": None})["max_support"] is None
        # integral floats pass for int options, ints pass for float options
        assert registry.resolve_options("exact", {"max_support": 512.0})["max_support"] == 512.0
        assert registry.resolve_options("normal", {"confidence": 1})["confidence"] == 1


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        registry = MethodRegistry()
        registry.register(make_definition())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(make_definition())

    def test_duplicate_builtin_rejected_on_default_registry(self):
        with pytest.raises(ValueError, match="'moments' is already registered"):
            default_registry().register(make_definition(name="moments"))

    def test_register_method_decorator_targets_a_registry(self):
        registry = MethodRegistry()

        @register_method(
            "mean-only",
            options=(OptionSpec("versions", "int", 2),),
            description="just the mean",
            registry=registry,
        )
        def mean_only(model, options, rng):
            return {"mean": 0.5}

        assert "mean-only" in registry
        assert "mean-only" not in default_registry()
        assert registry.get("mean-only").evaluate is mean_only
        assert len(registry) == 1

    def test_non_definition_rejected(self):
        with pytest.raises(TypeError, match="MethodDefinition"):
            MethodRegistry().register("moments")

    def test_duplicate_option_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate option"):
            make_definition(
                options=(OptionSpec("versions", "int", 2), OptionSpec("versions", "int", 3))
            )


class TestOptionSpec:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown type"):
            OptionSpec("x", "decimal", 1)

    def test_default_must_match_schema(self):
        with pytest.raises(ValueError, match="expects int"):
            OptionSpec("x", "int", "three")
        with pytest.raises(ValueError, match="allow_none"):
            OptionSpec("x", "int", None)

    def test_bool_and_str_options(self):
        assert OptionSpec("flag", "bool", True).validate(False) is False
        with pytest.raises(ValueError, match="expects bool"):
            OptionSpec("flag", "bool", True).validate(1)
        assert OptionSpec("mode", "str", "fast").validate("slow") == "slow"
        with pytest.raises(ValueError, match="expects str"):
            OptionSpec("mode", "str", "fast").validate(3)
