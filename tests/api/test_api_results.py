"""Tests for the typed evaluation result/request value objects."""

from __future__ import annotations

import json

import pytest

from repro.api import EvaluationRequest, EvaluationResult


def make_result(**overrides) -> EvaluationResult:
    payload = dict(
        method="exact",
        options={"versions": 2, "max_support": 256, "level": 0.99, "threshold": None},
        metrics={"exact_mean": 1.5e-5, "exact_support": 32},
        seed_entropy=None,
        elapsed_seconds=0.0123,
    )
    payload.update(overrides)
    return EvaluationResult(**payload)


class TestEvaluationResult:
    def test_round_trips_through_dict_and_json(self):
        result = make_result(seed_entropy=(7, 123))
        again = EvaluationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert again == result

    def test_options_and_metrics_are_sorted_items(self):
        result = make_result()
        assert result.options == tuple(sorted(result.options))
        assert result.metric_dict()["exact_mean"] == 1.5e-5
        assert result.option_dict()["max_support"] == 256

    def test_metric_access_by_subscript(self):
        result = make_result()
        assert result["exact_support"] == 32
        with pytest.raises(KeyError, match="no metric 'nope'"):
            result["nope"]

    def test_from_dict_rejects_unknown_keys_and_wrong_shapes(self):
        with pytest.raises(ValueError, match="unknown result keys"):
            EvaluationResult.from_dict({"method": "exact", "bogus": 1})
        with pytest.raises(ValueError, match="must be a mapping"):
            EvaluationResult.from_dict([1, 2])

    def test_equal_results_compare_equal_and_hash_equal(self):
        assert make_result() == make_result()
        assert hash(make_result()) == hash(make_result())


class TestEvaluationRequest:
    def test_coerce_spellings_agree(self):
        by_name = EvaluationRequest.coerce("moments")
        by_pair = EvaluationRequest.coerce(("moments", {}))
        by_mapping = EvaluationRequest.coerce({"method": "moments"})
        assert by_name == by_pair == by_mapping

    def test_mapping_options_are_extracted(self):
        request = EvaluationRequest.coerce({"method": "exact", "level": 0.999})
        assert request.method == "exact"
        assert request.option_dict() == {"level": 0.999}

    def test_bad_requests_rejected(self):
        with pytest.raises(ValueError, match="needs a 'method' key"):
            EvaluationRequest.coerce({"level": 0.9})
        with pytest.raises(ValueError, match="must be a method name"):
            EvaluationRequest.coerce(42)
        with pytest.raises(ValueError, match="needs a method name"):
            EvaluationRequest(method="")
