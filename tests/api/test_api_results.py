"""Tests for the typed evaluation result/request value objects."""

from __future__ import annotations

import json

import pytest

from repro.api import EvaluationRequest, EvaluationResult


def make_result(**overrides) -> EvaluationResult:
    payload = dict(
        method="exact",
        options={"versions": 2, "max_support": 256, "level": 0.99, "threshold": None},
        metrics={"exact_mean": 1.5e-5, "exact_support": 32},
        seed_entropy=None,
        elapsed_seconds=0.0123,
    )
    payload.update(overrides)
    return EvaluationResult(**payload)


class TestEvaluationResult:
    def test_round_trips_through_dict_and_json(self):
        result = make_result(seed_entropy=(7, 123))
        again = EvaluationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert again == result

    def test_options_and_metrics_are_sorted_items(self):
        result = make_result()
        assert result.options == tuple(sorted(result.options))
        assert result.metric_dict()["exact_mean"] == 1.5e-5
        assert result.option_dict()["max_support"] == 256

    def test_metric_access_by_subscript(self):
        result = make_result()
        assert result["exact_support"] == 32
        with pytest.raises(KeyError, match="no metric 'nope'"):
            result["nope"]

    def test_from_dict_rejects_unknown_keys_and_wrong_shapes(self):
        with pytest.raises(ValueError, match="unknown result keys"):
            EvaluationResult.from_dict({"method": "exact", "bogus": 1})
        with pytest.raises(ValueError, match="must be a mapping"):
            EvaluationResult.from_dict([1, 2])

    def test_equal_results_compare_equal_and_hash_equal(self):
        assert make_result() == make_result()
        assert hash(make_result()) == hash(make_result())

    def test_to_dict_converts_numpy_values_to_pure_json(self):
        import numpy as np

        result = make_result(
            options={"versions": np.int64(2)},
            metrics={
                "mean": np.float64(1.5e-5),
                "count": np.int32(3),
                "flag": np.bool_(True),
                "curve": np.array([1.0, 2.0]),
                "nested": {"inner": np.float32(0.5)},
            },
            seed_entropy=(np.int64(7),),
        )
        wire = result.to_dict()
        encoded = json.dumps(wire)  # raises TypeError if anything leaked
        assert wire["options"]["versions"] == 2
        assert type(wire["options"]["versions"]) is int
        assert type(wire["metrics"]["mean"]) is float
        assert type(wire["metrics"]["count"]) is int
        assert type(wire["metrics"]["flag"]) is bool
        assert wire["metrics"]["curve"] == [1.0, 2.0]
        assert type(wire["metrics"]["nested"]["inner"]) is float
        assert wire["seed_entropy"] == [7]
        # The decoded wire form round-trips losslessly from here on.
        again = EvaluationResult.from_dict(json.loads(encoded))
        assert again.to_dict() == wire


class TestEvaluationRequest:
    def test_coerce_spellings_agree(self):
        by_name = EvaluationRequest.coerce("moments")
        by_pair = EvaluationRequest.coerce(("moments", {}))
        by_mapping = EvaluationRequest.coerce({"method": "moments"})
        assert by_name == by_pair == by_mapping

    def test_mapping_options_are_extracted(self):
        request = EvaluationRequest.coerce({"method": "exact", "level": 0.999})
        assert request.method == "exact"
        assert request.option_dict() == {"level": 0.999}

    def test_bad_requests_rejected(self):
        with pytest.raises(ValueError, match="needs a 'method' key"):
            EvaluationRequest.coerce({"level": 0.9})
        with pytest.raises(ValueError, match="must be a method name"):
            EvaluationRequest.coerce(42)
        with pytest.raises(ValueError, match="needs a method name"):
            EvaluationRequest(method="")
