"""Tests for operational profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demandspace.profiles import (
    EmpiricalProfile,
    GridProfile,
    MixtureProfile,
    ProductProfile,
    TruncatedNormalMarginal,
    UniformMarginal,
)
from repro.demandspace.regions import BoxRegion
from repro.demandspace.space import ContinuousDemandSpace, DiscreteDemandSpace


class TestMarginals:
    def test_uniform_interval_probability(self):
        marginal = UniformMarginal(0.0, 2.0)
        assert marginal.interval_probability(0.0, 1.0) == pytest.approx(0.5)
        assert marginal.interval_probability(1.5, 5.0) == pytest.approx(0.25)
        assert marginal.interval_probability(3.0, 1.0) == 0.0

    def test_uniform_cdf(self):
        marginal = UniformMarginal(0.0, 4.0)
        np.testing.assert_allclose(marginal.cdf(np.array([-1.0, 2.0, 5.0])), [0.0, 0.5, 1.0])

    def test_uniform_rejects_inverted(self):
        with pytest.raises(ValueError):
            UniformMarginal(1.0, 0.0)

    def test_uniform_sampling_range(self):
        samples = UniformMarginal(2.0, 3.0).sample(np.random.default_rng(0), 500)
        assert samples.min() >= 2.0 and samples.max() <= 3.0

    def test_truncated_normal_mass_sums_to_one(self):
        marginal = TruncatedNormalMarginal(mean=0.0, std=1.0, lower=-2.0, upper=2.0)
        assert marginal.interval_probability(-2.0, 2.0) == pytest.approx(1.0)

    def test_truncated_normal_sampling_within_bounds(self):
        marginal = TruncatedNormalMarginal(mean=10.0, std=5.0, lower=8.0, upper=12.0)
        samples = marginal.sample(np.random.default_rng(0), 500)
        assert samples.min() >= 8.0 and samples.max() <= 12.0

    def test_truncated_normal_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TruncatedNormalMarginal(mean=0.0, std=0.0, lower=-1.0, upper=1.0)
        with pytest.raises(ValueError):
            TruncatedNormalMarginal(mean=0.0, std=1.0, lower=1.0, upper=-1.0)


class TestProductProfile:
    def test_uniform_constructor(self):
        space = ContinuousDemandSpace.unit_square()
        profile = ProductProfile.uniform(space)
        assert profile.dimension == 2
        assert profile.box_probability(np.array([0.0, 0.0]), np.array([0.5, 0.5])) == pytest.approx(0.25)

    def test_sample_shape_and_support(self):
        space = ContinuousDemandSpace(np.array([0.0, 10.0]), np.array([1.0, 20.0]))
        profile = ProductProfile.uniform(space)
        samples = profile.sample(np.random.default_rng(1), 200)
        assert samples.shape == (200, 2)
        assert np.all(space.contains(samples))

    def test_rejects_wrong_marginal_count(self):
        space = ContinuousDemandSpace.unit_square()
        with pytest.raises(ValueError):
            ProductProfile(space, [UniformMarginal(0.0, 1.0)])

    def test_box_probability_dimension_check(self):
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        with pytest.raises(ValueError):
            profile.box_probability(np.array([0.0]), np.array([0.5]))

    def test_mixed_marginals(self):
        space = ContinuousDemandSpace(np.array([0.0, 0.0]), np.array([1.0, 10.0]))
        profile = ProductProfile(
            space,
            [UniformMarginal(0.0, 1.0), TruncatedNormalMarginal(5.0, 2.0, 0.0, 10.0)],
        )
        probability = profile.box_probability(np.array([0.0, 0.0]), np.array([1.0, 10.0]))
        assert probability == pytest.approx(1.0)


class TestMixtureProfile:
    def test_sampling_dimension(self):
        space = ContinuousDemandSpace.unit_square()
        mixture = MixtureProfile(
            [ProductProfile.uniform(space), ProductProfile.uniform(space)], [0.5, 0.5]
        )
        samples = mixture.sample(np.random.default_rng(2), 100)
        assert samples.shape == (100, 2)

    def test_weights_are_normalised(self):
        space = ContinuousDemandSpace.unit_square()
        mixture = MixtureProfile(
            [ProductProfile.uniform(space), ProductProfile.uniform(space)], [2.0, 6.0]
        )
        np.testing.assert_allclose(mixture.weights, [0.25, 0.75])

    def test_rejects_bad_weights(self):
        space = ContinuousDemandSpace.unit_square()
        uniform = ProductProfile.uniform(space)
        with pytest.raises(ValueError):
            MixtureProfile([uniform], [-1.0])
        with pytest.raises(ValueError):
            MixtureProfile([uniform, uniform], [1.0])
        with pytest.raises(ValueError):
            MixtureProfile([], [])

    def test_rejects_dimension_mismatch(self):
        square = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        cube = ProductProfile.uniform(ContinuousDemandSpace.unit_cube(3))
        with pytest.raises(ValueError):
            MixtureProfile([square, cube], [0.5, 0.5])

    def test_sample_zero(self):
        space = ContinuousDemandSpace.unit_square()
        mixture = MixtureProfile([ProductProfile.uniform(space)], [1.0])
        assert mixture.sample(np.random.default_rng(0), 0).shape == (0, 2)


class TestGridProfile:
    def test_uniform_grid(self):
        space = DiscreteDemandSpace(np.arange(4, dtype=float).reshape(-1, 1))
        profile = GridProfile.uniform(space)
        np.testing.assert_allclose(profile.probabilities, 0.25)

    def test_region_probability(self):
        space = DiscreteDemandSpace(np.arange(10, dtype=float).reshape(-1, 1))
        profile = GridProfile.uniform(space)
        region = BoxRegion(np.array([0.0]), np.array([2.0]))
        assert profile.region_probability(region) == pytest.approx(0.3)

    def test_rejects_bad_probabilities(self):
        space = DiscreteDemandSpace(np.arange(3, dtype=float).reshape(-1, 1))
        with pytest.raises(ValueError):
            GridProfile(space, np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            GridProfile(space, np.array([-0.1, 0.6, 0.5]))
        with pytest.raises(ValueError):
            GridProfile(space, np.zeros(3))

    def test_sampling_follows_probabilities(self):
        space = DiscreteDemandSpace(np.array([[0.0], [1.0]]))
        profile = GridProfile(space, np.array([0.9, 0.1]))
        samples = profile.sample(np.random.default_rng(3), 5000)
        assert np.mean(samples == 0.0) == pytest.approx(0.9, abs=0.02)


class TestEmpiricalProfile:
    def test_sampling_resamples_recorded_demands(self):
        recorded = np.array([[1.0, 2.0], [3.0, 4.0]])
        profile = EmpiricalProfile(recorded)
        samples = profile.sample(np.random.default_rng(4), 50)
        for sample in samples:
            assert any(np.allclose(sample, row) for row in recorded)

    def test_region_probability_is_fraction(self):
        recorded = np.array([[0.1], [0.2], [0.8], [0.9]])
        profile = EmpiricalProfile(recorded)
        region = BoxRegion(np.array([0.0]), np.array([0.5]))
        assert profile.region_probability(region) == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalProfile(np.zeros((0, 2)))
