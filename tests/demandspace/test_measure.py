"""Tests for region probability measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demandspace.measure import estimate_region_probability, region_probability
from repro.demandspace.profiles import EmpiricalProfile, GridProfile, ProductProfile
from repro.demandspace.regions import BallRegion, BoxRegion, EmptyRegion, UnionRegion
from repro.demandspace.space import ContinuousDemandSpace, DiscreteDemandSpace


class TestAnalyticMeasure:
    def test_empty_region_any_profile(self):
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        assert region_probability(EmptyRegion(), profile) == 0.0

    def test_box_under_uniform_product(self):
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        region = BoxRegion(np.array([0.1, 0.2]), np.array([0.4, 0.6]))
        assert region_probability(region, profile) == pytest.approx(0.3 * 0.4)

    def test_union_of_disjoint_boxes(self):
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        union = UnionRegion(
            [
                BoxRegion(np.array([0.0, 0.0]), np.array([0.2, 0.2])),
                BoxRegion(np.array([0.5, 0.5]), np.array([0.7, 0.7])),
            ]
        )
        assert region_probability(union, profile) == pytest.approx(0.08)

    def test_union_of_overlapping_boxes_returns_none(self):
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        union = UnionRegion(
            [
                BoxRegion(np.array([0.0, 0.0]), np.array([0.5, 0.5])),
                BoxRegion(np.array([0.25, 0.25]), np.array([0.75, 0.75])),
            ]
        )
        assert region_probability(union, profile) is None

    def test_ball_under_product_profile_returns_none(self):
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        assert region_probability(BallRegion(np.array([0.5, 0.5]), 0.1), profile) is None

    def test_grid_profile_exact_summation(self):
        space = DiscreteDemandSpace(np.arange(10, dtype=float).reshape(-1, 1))
        profile = GridProfile.uniform(space)
        region = BoxRegion(np.array([3.0]), np.array([6.0]))
        assert region_probability(region, profile) == pytest.approx(0.4)

    def test_empirical_profile_fraction(self):
        profile = EmpiricalProfile(np.array([[0.1], [0.6], [0.7], [0.9]]))
        region = BoxRegion(np.array([0.5]), np.array([1.0]))
        assert region_probability(region, profile) == pytest.approx(0.75)


class TestMonteCarloMeasure:
    def test_estimate_matches_analytic_for_box(self):
        rng = np.random.default_rng(5)
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        region = BoxRegion(np.array([0.2, 0.2]), np.array([0.7, 0.7]))
        estimate = estimate_region_probability(region, profile, rng, sample_size=50_000)
        analytic = region_probability(region, profile)
        assert estimate.value == pytest.approx(analytic, abs=4 * estimate.standard_error)

    def test_estimate_for_ball(self):
        rng = np.random.default_rng(6)
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        region = BallRegion(np.array([0.5, 0.5]), 0.25)
        estimate = estimate_region_probability(region, profile, rng, sample_size=50_000)
        assert estimate.value == pytest.approx(np.pi * 0.25**2, abs=5 * estimate.standard_error)

    def test_confidence_interval_clipped(self):
        rng = np.random.default_rng(7)
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        estimate = estimate_region_probability(EmptyRegion(), profile, rng, sample_size=100)
        low, high = estimate.confidence_interval()
        assert low == 0.0
        assert high >= 0.0

    def test_rejects_bad_sample_size(self):
        rng = np.random.default_rng(8)
        profile = ProductProfile.uniform(ContinuousDemandSpace.unit_square())
        with pytest.raises(ValueError):
            estimate_region_probability(EmptyRegion(), profile, rng, sample_size=0)
