"""Tests for demand spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demandspace.space import ContinuousDemandSpace, DiscreteDemandSpace


class TestContinuousDemandSpace:
    def test_unit_square(self):
        space = ContinuousDemandSpace.unit_square()
        assert space.dimension == 2
        assert space.volume() == pytest.approx(1.0)
        assert space.names == ("var1", "var2")

    def test_unit_cube(self):
        space = ContinuousDemandSpace.unit_cube(4)
        assert space.dimension == 4
        assert space.volume() == pytest.approx(1.0)

    def test_unit_cube_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            ContinuousDemandSpace.unit_cube(0)

    def test_custom_names(self):
        space = ContinuousDemandSpace(
            np.array([0.0, 10.0]), np.array([5.0, 20.0]), names=("pressure", "temperature")
        )
        assert space.names == ("pressure", "temperature")
        np.testing.assert_allclose(space.widths, [5.0, 10.0])
        assert space.volume() == pytest.approx(50.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            ContinuousDemandSpace(np.array([1.0]), np.array([0.0]))

    def test_rejects_name_count_mismatch(self):
        with pytest.raises(ValueError):
            ContinuousDemandSpace(np.array([0.0]), np.array([1.0]), names=("a", "b"))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            ContinuousDemandSpace(np.array([0.0, 1.0]), np.array([1.0]))

    def test_contains(self):
        space = ContinuousDemandSpace.unit_square()
        demands = np.array([[0.5, 0.5], [1.5, 0.5], [0.0, 1.0]])
        np.testing.assert_array_equal(space.contains(demands), [True, False, True])

    def test_contains_single_demand(self):
        space = ContinuousDemandSpace.unit_square()
        assert space.contains(np.array([0.2, 0.3]))[0]

    def test_contains_rejects_wrong_dimension(self):
        space = ContinuousDemandSpace.unit_square()
        with pytest.raises(ValueError):
            space.contains(np.array([[0.1, 0.2, 0.3]]))

    def test_grid_shape_and_coverage(self):
        space = ContinuousDemandSpace.unit_square()
        grid = space.grid(5)
        assert grid.shape == (25, 2)
        assert np.all(space.contains(grid))
        assert grid.min() == pytest.approx(0.0)
        assert grid.max() == pytest.approx(1.0)

    def test_grid_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            ContinuousDemandSpace.unit_square().grid(1)

    def test_sample_uniform_inside(self):
        space = ContinuousDemandSpace(np.array([-1.0, 2.0]), np.array([1.0, 4.0]))
        samples = space.sample_uniform(np.random.default_rng(0), 1000)
        assert samples.shape == (1000, 2)
        assert np.all(space.contains(samples))

    def test_sample_uniform_rejects_negative(self):
        with pytest.raises(ValueError):
            ContinuousDemandSpace.unit_square().sample_uniform(np.random.default_rng(0), -1)


class TestDiscreteDemandSpace:
    def test_basic_properties(self):
        space = DiscreteDemandSpace(np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5]]))
        assert space.dimension == 2
        assert space.size == 3

    def test_one_dimensional_points_are_reshaped(self):
        space = DiscreteDemandSpace(np.array([1.0, 2.0, 3.0]))
        assert space.dimension == 1
        assert space.size == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteDemandSpace(np.zeros((0, 2)))

    def test_contains_and_index_of(self):
        space = DiscreteDemandSpace(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert space.contains(np.array([1.0, 1.0]))[0]
        assert not space.contains(np.array([0.5, 0.5]))[0]
        assert space.index_of(np.array([1.0, 1.0])) == 1
        assert space.index_of(np.array([0.5, 0.5])) == -1
