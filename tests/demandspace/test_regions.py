"""Tests for failure regions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demandspace.regions import (
    BallRegion,
    BoxRegion,
    EmptyRegion,
    HalfSpaceRegion,
    PointSetRegion,
    UnionRegion,
)


class TestEmptyRegion:
    def test_contains_nothing(self):
        region = EmptyRegion()
        demands = np.random.default_rng(0).random((10, 2))
        assert not region.contains(demands).any()


class TestBoxRegion:
    def test_membership(self):
        region = BoxRegion(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        demands = np.array([[0.25, 0.25], [0.5, 0.5], [0.6, 0.1]])
        np.testing.assert_array_equal(region.contains(demands), [True, True, False])

    def test_volume(self):
        region = BoxRegion(np.array([0.0, 1.0]), np.array([2.0, 4.0]))
        assert region.volume() == pytest.approx(6.0)

    def test_degenerate_box(self):
        region = BoxRegion(np.array([0.5]), np.array([0.5]))
        assert region.volume() == 0.0
        assert region.contains(np.array([[0.5]]))[0]

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            BoxRegion(np.array([1.0]), np.array([0.0]))

    def test_rejects_dimension_mismatch(self):
        region = BoxRegion(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            region.contains(np.array([[0.1, 0.2, 0.3]]))


class TestBallRegion:
    def test_membership(self):
        region = BallRegion(np.array([0.5, 0.5]), radius=0.2)
        demands = np.array([[0.5, 0.5], [0.65, 0.5], [0.8, 0.5]])
        np.testing.assert_array_equal(region.contains(demands), [True, True, False])

    def test_volume_two_dimensional(self):
        region = BallRegion(np.array([0.0, 0.0]), radius=2.0)
        assert region.volume() == pytest.approx(np.pi * 4.0)

    def test_volume_three_dimensional(self):
        region = BallRegion(np.zeros(3), radius=1.0)
        assert region.volume() == pytest.approx(4.0 / 3.0 * np.pi)

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            BallRegion(np.array([0.0]), radius=-1.0)


class TestHalfSpaceRegion:
    def test_membership(self):
        # Fails whenever x + y >= 1.
        region = HalfSpaceRegion(np.array([1.0, 1.0]), offset=1.0)
        demands = np.array([[0.5, 0.5], [0.2, 0.2], [0.9, 0.3]])
        np.testing.assert_array_equal(region.contains(demands), [True, False, True])

    def test_rejects_zero_normal(self):
        with pytest.raises(ValueError):
            HalfSpaceRegion(np.zeros(2), offset=0.0)


class TestPointSetRegion:
    def test_exact_points(self):
        region = PointSetRegion(np.array([[0.1, 0.1], [0.9, 0.9]]))
        demands = np.array([[0.1, 0.1], [0.1, 0.2], [0.9, 0.9]])
        np.testing.assert_array_equal(region.contains(demands), [True, False, True])

    def test_tolerance_creates_small_boxes(self):
        region = PointSetRegion(np.array([[0.5, 0.5]]), tolerance=0.05)
        demands = np.array([[0.52, 0.48], [0.6, 0.5]])
        np.testing.assert_array_equal(region.contains(demands), [True, False])

    def test_one_dimensional_points(self):
        region = PointSetRegion(np.array([0.3, 0.6]))
        assert region.dimension == 1
        assert region.contains(np.array([[0.3]]))[0]

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            PointSetRegion(np.array([[0.5]]), tolerance=-0.1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PointSetRegion(np.zeros((0, 2)))


class TestUnionRegion:
    def test_union_of_disjoint_boxes(self):
        union = UnionRegion(
            [
                BoxRegion(np.array([0.0, 0.0]), np.array([0.2, 0.2])),
                BoxRegion(np.array([0.8, 0.8]), np.array([1.0, 1.0])),
            ]
        )
        demands = np.array([[0.1, 0.1], [0.9, 0.9], [0.5, 0.5]])
        np.testing.assert_array_equal(union.contains(demands), [True, True, False])

    def test_union_flattens_nested_unions(self):
        inner = UnionRegion([EmptyRegion(), EmptyRegion()])
        outer = UnionRegion([inner, EmptyRegion()])
        assert len(outer.components) == 3

    def test_union_method_on_regions(self):
        combined = BoxRegion(np.array([0.0]), np.array([0.1])).union(
            BoxRegion(np.array([0.5]), np.array([0.6]))
        )
        assert isinstance(combined, UnionRegion)
        np.testing.assert_array_equal(
            combined.contains(np.array([[0.05], [0.55], [0.3]])), [True, True, False]
        )

    def test_rejects_empty_union(self):
        with pytest.raises(ValueError):
            UnionRegion([])
