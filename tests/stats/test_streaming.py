"""Tests for the streaming accumulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.streaming import StreamingHistogram, StreamingMoments


class TestStreamingMoments:
    def test_matches_numpy_for_batches(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(size=10_000)
        moments = StreamingMoments()
        for start in range(0, samples.size, 997):
            moments.update(samples[start : start + 997])
        assert moments.count == samples.size
        assert moments.mean() == pytest.approx(float(np.mean(samples)), rel=1e-12)
        assert moments.std() == pytest.approx(float(np.std(samples, ddof=1)), rel=1e-10)
        assert moments.variance() == pytest.approx(float(np.var(samples, ddof=1)), rel=1e-10)
        assert moments.minimum == float(np.min(samples))
        assert moments.maximum == float(np.max(samples))

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(size=5000)
        whole = StreamingMoments()
        whole.update(samples)
        left, right = StreamingMoments(), StreamingMoments()
        left.update(samples[:1234])
        right.update(samples[1234:])
        left.merge(right)
        assert left.count == whole.count
        assert left.mean() == pytest.approx(whole.mean(), rel=1e-12)
        assert left.variance() == pytest.approx(whole.variance(), rel=1e-10)

    def test_zero_tracking(self):
        moments = StreamingMoments()
        moments.update(np.array([0.0, 1.0, 0.0, 2.0]))
        assert moments.zeros == 2
        assert moments.fraction_zero() == pytest.approx(0.5)

    def test_standard_error(self):
        moments = StreamingMoments()
        samples = np.arange(100, dtype=float)
        moments.update(samples)
        expected = float(np.std(samples, ddof=1) / np.sqrt(samples.size))
        assert moments.standard_error() == pytest.approx(expected, rel=1e-12)

    def test_empty_accumulator_raises(self):
        moments = StreamingMoments()
        with pytest.raises(ValueError):
            moments.mean()
        with pytest.raises(ValueError):
            _ = moments.minimum
        moments.update(np.array([]))
        assert moments.count == 0

    def test_merge_empty_is_noop(self):
        moments = StreamingMoments()
        moments.update(np.array([1.0, 2.0]))
        moments.merge(StreamingMoments())
        assert moments.count == 2


class TestStreamingHistogram:
    def test_cdf_exact_at_edges(self):
        histogram = StreamingHistogram(0.0, 1.0, bins=10)
        histogram.update(np.array([0.05, 0.15, 0.15, 0.95]))
        assert histogram.cdf(0.1) == pytest.approx(0.25)
        assert histogram.cdf(0.2) == pytest.approx(0.75)
        assert histogram.cdf(1.0) == pytest.approx(1.0)
        assert histogram.cdf(-0.5) == 0.0

    def test_zero_atom_tracked_exactly(self):
        histogram = StreamingHistogram(0.0, 1.0, bins=4)
        histogram.update(np.array([0.0, 0.0, 0.3]))
        assert histogram.prob_zero() == pytest.approx(2.0 / 3.0)
        assert histogram.cdf(0.0) >= 2.0 / 3.0 - 1e-12

    def test_quantile_monotone_and_bounded(self):
        rng = np.random.default_rng(2)
        samples = rng.random(10_000)
        histogram = StreamingHistogram(0.0, 1.0, bins=1000)
        histogram.update(samples)
        levels = [0.1, 0.5, 0.9, 0.99]
        quantiles = [histogram.quantile(level) for level in levels]
        assert all(a <= b for a, b in zip(quantiles, quantiles[1:]))
        for level, value in zip(levels, quantiles):
            assert value == pytest.approx(level, abs=0.01)

    def test_merge_matches_single_pass(self):
        rng = np.random.default_rng(3)
        samples = rng.random(2000)
        whole = StreamingHistogram(0.0, 1.0, bins=64)
        whole.update(samples)
        left = StreamingHistogram(0.0, 1.0, bins=64)
        right = StreamingHistogram(0.0, 1.0, bins=64)
        left.update(samples[:777])
        right.update(samples[777:])
        left.merge(right)
        np.testing.assert_array_equal(left.counts, whole.counts)
        assert left.total == whole.total

    def test_merge_rejects_mismatched_edges(self):
        left = StreamingHistogram(0.0, 1.0, bins=8)
        right = StreamingHistogram(0.0, 2.0, bins=8)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_out_of_range_counted(self):
        histogram = StreamingHistogram(0.0, 1.0, bins=4)
        histogram.update(np.array([-0.5, 0.5, 1.5]))
        assert histogram.underflow == 1
        assert histogram.overflow == 1
        assert histogram.cdf(1.0) == pytest.approx(2.0 / 3.0)
        assert histogram.cdf(2.0) == pytest.approx(1.0)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            StreamingHistogram(1.0, 0.0)
        with pytest.raises(ValueError):
            StreamingHistogram(0.0, 1.0, bins=0)
