"""Tests for the empirical statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.empirical import (
    EmpiricalDistribution,
    bootstrap_confidence_interval,
    empirical_cdf,
    empirical_quantile,
    standard_error_of_mean,
)


class TestFunctions:
    def test_empirical_cdf(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        assert empirical_cdf(samples, 2.5) == pytest.approx(0.5)
        assert empirical_cdf(samples, 0.0) == 0.0
        assert empirical_cdf(samples, 10.0) == 1.0

    def test_empirical_cdf_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]), 1.0)

    def test_empirical_quantile(self):
        samples = np.arange(1, 101, dtype=float)
        assert empirical_quantile(samples, 0.5) == pytest.approx(50.0)
        assert empirical_quantile(samples, 0.99) == pytest.approx(99.0)

    def test_empirical_quantile_rejects_bad_level(self):
        with pytest.raises(ValueError):
            empirical_quantile(np.array([1.0]), 2.0)

    def test_standard_error_of_mean(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        expected = np.std(samples, ddof=1) / 2.0
        assert standard_error_of_mean(samples) == pytest.approx(expected)

    def test_standard_error_single_sample_infinite(self):
        assert standard_error_of_mean(np.array([1.0])) == float("inf")

    def test_bootstrap_interval_contains_statistic(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(5.0, 1.0, size=400)
        low, high = bootstrap_confidence_interval(samples, np.mean, rng, 0.95, 400)
        assert low < samples.mean() < high
        assert high - low < 0.5

    def test_bootstrap_rejects_bad_arguments(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(np.array([]), np.mean, rng)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(np.array([1.0]), np.mean, rng, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(np.array([1.0]), np.mean, rng, n_resamples=0)


class TestEmpiricalDistribution:
    @pytest.fixture
    def distribution(self) -> EmpiricalDistribution:
        return EmpiricalDistribution(np.array([0.0, 0.0, 0.1, 0.2, 0.3]))

    def test_rejects_empty_or_2d(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution(np.array([]))
        with pytest.raises(ValueError):
            EmpiricalDistribution(np.array([[1.0]]))

    def test_size_and_mean(self, distribution: EmpiricalDistribution):
        assert distribution.size == 5
        assert distribution.mean() == pytest.approx(0.12)

    def test_std_and_variance(self, distribution: EmpiricalDistribution):
        assert distribution.variance() == pytest.approx(np.var(distribution.samples, ddof=1))
        assert distribution.std() == pytest.approx(np.std(distribution.samples, ddof=1))

    def test_single_sample_std_is_zero(self):
        assert EmpiricalDistribution(np.array([1.0])).std() == 0.0

    def test_cdf_quantile_exceedance(self, distribution: EmpiricalDistribution):
        assert distribution.cdf(0.1) == pytest.approx(0.6)
        assert distribution.exceedance_probability(0.1) == pytest.approx(0.4)
        assert distribution.quantile(0.99) == pytest.approx(0.3)

    def test_prob_zero(self, distribution: EmpiricalDistribution):
        assert distribution.prob_zero() == pytest.approx(0.4)

    def test_mean_confidence_interval_covers_mean(self, distribution: EmpiricalDistribution):
        low, high = distribution.mean_confidence_interval(0.9)
        assert low < distribution.mean() < high

    def test_mean_confidence_interval_rejects_bad_confidence(
        self, distribution: EmpiricalDistribution
    ):
        with pytest.raises(ValueError):
            distribution.mean_confidence_interval(0.0)
