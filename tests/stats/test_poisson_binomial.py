"""Tests for the Poisson-binomial distribution."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats.poisson_binomial import PoissonBinomial


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PoissonBinomial(np.array([]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PoissonBinomial(np.array([0.5, 1.2]))
        with pytest.raises(ValueError):
            PoissonBinomial(np.array([-0.1]))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            PoissonBinomial(np.array([0.2, np.nan]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            PoissonBinomial(np.array([[0.1, 0.2]]))


class TestMoments:
    def test_mean_is_sum_of_probabilities(self):
        distribution = PoissonBinomial(np.array([0.1, 0.2, 0.3]))
        assert distribution.mean() == pytest.approx(0.6)

    def test_variance_formula(self):
        p = np.array([0.1, 0.2, 0.3])
        distribution = PoissonBinomial(p)
        assert distribution.variance() == pytest.approx(np.sum(p * (1 - p)))

    def test_std_is_sqrt_variance(self):
        distribution = PoissonBinomial(np.array([0.4, 0.4]))
        assert distribution.std() == pytest.approx(np.sqrt(distribution.variance()))

    def test_degenerate_variance_zero(self):
        distribution = PoissonBinomial(np.array([0.0, 1.0]))
        assert distribution.variance() == pytest.approx(0.0)
        assert distribution.skewness() == 0.0


class TestExactPmf:
    def test_matches_binomial_for_identical_probabilities(self):
        n, p = 12, 0.3
        distribution = PoissonBinomial(np.full(n, p))
        expected = sps.binom.pmf(np.arange(n + 1), n, p)
        np.testing.assert_allclose(distribution.pmf(), expected, atol=1e-12)

    def test_pmf_sums_to_one(self):
        distribution = PoissonBinomial(np.array([0.01, 0.5, 0.99, 0.3]))
        assert distribution.pmf().sum() == pytest.approx(1.0)

    def test_two_component_pmf_by_hand(self):
        distribution = PoissonBinomial(np.array([0.2, 0.5]))
        pmf = distribution.pmf()
        assert pmf[0] == pytest.approx(0.8 * 0.5)
        assert pmf[1] == pytest.approx(0.2 * 0.5 + 0.8 * 0.5)
        assert pmf[2] == pytest.approx(0.2 * 0.5)

    def test_cdf_is_cumulative_pmf(self):
        distribution = PoissonBinomial(np.array([0.3, 0.6, 0.1]))
        np.testing.assert_allclose(distribution.cdf(), np.cumsum(distribution.pmf()))

    def test_prob_zero_closed_form(self):
        p = np.array([0.1, 0.25, 0.4])
        distribution = PoissonBinomial(p)
        assert distribution.prob_zero() == pytest.approx(np.prod(1 - p))
        assert distribution.prob_positive() == pytest.approx(1 - np.prod(1 - p))

    def test_prob_at_least_and_exactly(self):
        distribution = PoissonBinomial(np.array([0.5, 0.5]))
        assert distribution.prob_at_least(0) == 1.0
        assert distribution.prob_at_least(3) == 0.0
        assert distribution.prob_at_least(1) == pytest.approx(0.75)
        assert distribution.prob_exactly(2) == pytest.approx(0.25)
        assert distribution.prob_exactly(-1) == 0.0
        assert distribution.prob_exactly(5) == 0.0

    def test_pmf_cached_view_is_read_only(self):
        distribution = PoissonBinomial(np.array([0.2, 0.4]))
        first = distribution.pmf()
        with pytest.raises(ValueError):
            first[:] = 0.0
        assert distribution.pmf() is first
        assert distribution.pmf().sum() == pytest.approx(1.0)

    def test_cdf_cached_view_is_read_only(self):
        distribution = PoissonBinomial(np.array([0.2, 0.4]))
        cdf = distribution.cdf()
        with pytest.raises(ValueError):
            cdf[0] = 0.5
        assert distribution.cdf() is cdf
        assert cdf[-1] == pytest.approx(1.0)


class TestApproximations:
    def test_normal_approximation_reasonable_for_large_n(self):
        distribution = PoissonBinomial(np.full(400, 0.3))
        exact = float(distribution.cdf()[120])
        approx = distribution.normal_approximation_cdf(120)
        assert abs(exact - approx) < 0.02

    def test_refined_normal_beats_plain_for_skewed_case(self):
        # Compare the worst-case CDF error over the whole support: the
        # skewness correction should clearly improve on the plain normal
        # approximation for this strongly skewed (Poisson-like) case.
        distribution = PoissonBinomial(np.full(60, 0.03))
        exact_cdf = distribution.cdf()
        plain_errors = [
            abs(distribution.normal_approximation_cdf(k) - exact_cdf[k]) for k in range(61)
        ]
        refined_errors = [
            abs(distribution.refined_normal_approximation_cdf(k) - exact_cdf[k])
            for k in range(61)
        ]
        assert max(refined_errors) < max(plain_errors)
        assert max(refined_errors) < 0.02

    def test_degenerate_normal_approximation(self):
        distribution = PoissonBinomial(np.array([1.0, 1.0]))
        assert distribution.normal_approximation_cdf(2) == 1.0
        assert distribution.normal_approximation_cdf(1) == 0.0

    def test_poisson_approximation_prob_zero(self):
        p = np.array([0.01, 0.02, 0.005])
        distribution = PoissonBinomial(p)
        assert distribution.poisson_approximation_prob_zero() == pytest.approx(
            np.exp(-p.sum())
        )
        # For small probabilities the Poisson and exact values are close.
        assert distribution.poisson_approximation_prob_zero() == pytest.approx(
            distribution.prob_zero(), rel=1e-3
        )


class TestSampling:
    def test_sample_matches_mean(self):
        rng = np.random.default_rng(1)
        distribution = PoissonBinomial(np.array([0.2, 0.5, 0.8]))
        samples = distribution.sample(rng, 20_000)
        assert samples.mean() == pytest.approx(distribution.mean(), abs=0.03)

    def test_sample_size_zero(self):
        rng = np.random.default_rng(1)
        assert PoissonBinomial(np.array([0.5])).sample(rng, 0).size == 0

    def test_sample_negative_size_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            PoissonBinomial(np.array([0.5])).sample(rng, -1)


class TestDerivedDistributions:
    def test_squared_probabilities(self):
        p = np.array([0.1, 0.4])
        squared = PoissonBinomial(p).squared()
        np.testing.assert_allclose(squared.probabilities, p**2)

    def test_powered_generalises_squared(self):
        p = np.array([0.3, 0.6])
        assert np.allclose(
            PoissonBinomial(p).powered(2).probabilities,
            PoissonBinomial(p).squared().probabilities,
        )
        np.testing.assert_allclose(PoissonBinomial(p).powered(3).probabilities, p**3)

    def test_powered_rejects_non_positive(self):
        with pytest.raises(ValueError):
            PoissonBinomial(np.array([0.5])).powered(0)
