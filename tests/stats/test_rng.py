"""Tests for random-generator management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.rng import default_rng, ensure_rng, fixed_seed_sequence, spawn_rngs


class TestDefaultRng:
    def test_default_seed_is_reproducible(self):
        assert default_rng().random() == default_rng().random()

    def test_explicit_seed(self):
        assert default_rng(1).random() == np.random.default_rng(1).random()

    def test_different_seeds_differ(self):
        assert default_rng(1).random() != default_rng(2).random()


class TestEnsureRng:
    def test_passes_generator_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_accepts_int_seed(self):
        assert ensure_rng(5).random() == np.random.default_rng(5).random()

    def test_accepts_none(self):
        assert ensure_rng(None).random() == default_rng().random()


class TestSpawn:
    def test_spawn_count(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4

    def test_spawn_streams_differ(self):
        children = spawn_rngs(0, 2)
        assert children[0].random() != children[1].random()

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_is_reproducible(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second


class TestFixedSeeds:
    def test_streams_match_seeds(self):
        generators = fixed_seed_sequence([1, 2])
        assert generators[0].random() == np.random.default_rng(1).random()
        assert generators[1].random() == np.random.default_rng(2).random()
