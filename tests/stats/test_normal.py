"""Tests for the normal-approximation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.normal import (
    NormalApproximation,
    berry_esseen_bound,
    confidence_for_k_factor,
    k_factor_for_confidence,
    normal_cdf,
    normal_quantile,
)


class TestScalarHelpers:
    def test_normal_cdf_at_zero(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)

    def test_quantile_inverts_cdf(self):
        for level in (0.01, 0.3, 0.5, 0.84, 0.99):
            assert normal_cdf(normal_quantile(level)) == pytest.approx(level)

    def test_quantile_rejects_extremes(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)

    def test_paper_three_sigma_confidence(self):
        # Section 5.1: P(Theta <= mu + 3 sigma) = 0.99865003.
        assert confidence_for_k_factor(3.0) == pytest.approx(0.99865003, abs=1e-7)

    def test_paper_99_percent_k_factor(self):
        # Section 5.1: the 99% confidence level corresponds to mu + 2.33 sigma.
        assert k_factor_for_confidence(0.99) == pytest.approx(2.33, abs=0.005)


class TestNormalApproximation:
    def test_bound_formula(self):
        approximation = NormalApproximation(mean=0.01, std=0.002)
        assert approximation.bound(3.0) == pytest.approx(0.016)

    def test_bound_for_confidence_median_is_mean(self):
        approximation = NormalApproximation(mean=0.02, std=0.005)
        assert approximation.bound_for_confidence(0.5) == pytest.approx(0.02)

    def test_confidence_of_bound_roundtrip(self):
        approximation = NormalApproximation(mean=0.01, std=0.001)
        bound = approximation.bound_for_confidence(0.95)
        assert approximation.confidence_of_bound(bound) == pytest.approx(0.95)

    def test_exceedance_complements_confidence(self):
        approximation = NormalApproximation(mean=0.1, std=0.01)
        assert approximation.exceedance_probability(0.1) == pytest.approx(0.5)

    def test_degenerate_std_zero(self):
        approximation = NormalApproximation(mean=0.01, std=0.0)
        assert approximation.bound_for_confidence(0.99) == pytest.approx(0.01)
        assert approximation.confidence_of_bound(0.02) == 1.0
        assert approximation.confidence_of_bound(0.005) == 0.0
        assert approximation.percentile(0.99) == pytest.approx(0.01)

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            NormalApproximation(mean=0.0, std=-1.0)

    def test_rejects_non_finite_mean(self):
        with pytest.raises(ValueError):
            NormalApproximation(mean=float("nan"), std=1.0)

    def test_percentile_matches_bound(self):
        approximation = NormalApproximation(mean=0.05, std=0.01)
        assert approximation.percentile(0.975) == pytest.approx(
            approximation.bound_for_confidence(0.975)
        )


class TestBerryEsseen:
    def test_bound_formula(self):
        variances = np.array([1.0, 1.0])
        third_moments = np.array([0.5, 0.5])
        expected = 0.56 * 1.0 / 2.0**1.5
        assert berry_esseen_bound(third_moments, variances) == pytest.approx(expected)

    def test_zero_variance_is_infinite(self):
        assert berry_esseen_bound(np.array([0.0]), np.array([0.0])) == float("inf")

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            berry_esseen_bound(np.array([1.0, 2.0]), np.array([1.0]))

    def test_rejects_negative_moments(self):
        with pytest.raises(ValueError):
            berry_esseen_bound(np.array([-1.0]), np.array([1.0]))

    def test_decreases_with_more_terms(self):
        # More i.i.d. terms -> better normal approximation -> smaller bound.
        def bound_for(n: int) -> float:
            variances = np.full(n, 0.01)
            third_moments = np.full(n, 0.001)
            return berry_esseen_bound(third_moments, variances)

        assert bound_for(200) < bound_for(20) < bound_for(5)
