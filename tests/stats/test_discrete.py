"""Tests for finite discrete distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.discrete import DiscreteDistribution


class TestConstruction:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.array([0.0, 1.0]), np.array([1.0]))

    def test_rejects_negative_probabilities(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.array([0.0, 1.0]), np.array([1.5, -0.5]))

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.array([0.0, 1.0]), np.array([0.3, 0.3]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.array([]), np.array([]))

    def test_sorts_support(self):
        distribution = DiscreteDistribution(np.array([2.0, 1.0]), np.array([0.25, 0.75]))
        np.testing.assert_allclose(distribution.support, [1.0, 2.0])
        np.testing.assert_allclose(distribution.probabilities, [0.75, 0.25])

    def test_merges_duplicate_support(self):
        distribution = DiscreteDistribution(
            np.array([1.0, 1.0, 2.0]), np.array([0.2, 0.3, 0.5])
        )
        np.testing.assert_allclose(distribution.support, [1.0, 2.0])
        np.testing.assert_allclose(distribution.probabilities, [0.5, 0.5])

    def test_point_mass(self):
        distribution = DiscreteDistribution.point_mass(0.3)
        assert distribution.mean() == pytest.approx(0.3)
        assert distribution.variance() == pytest.approx(0.0)

    def test_two_point(self):
        distribution = DiscreteDistribution.two_point(0.5, 0.2)
        assert distribution.mean() == pytest.approx(0.1)
        assert distribution.prob_zero() == pytest.approx(0.8)

    def test_two_point_degenerate_cases(self):
        assert DiscreteDistribution.two_point(0.5, 0.0).support.size == 1
        assert DiscreteDistribution.two_point(0.0, 0.7).support.size == 1
        assert DiscreteDistribution.two_point(0.5, 1.0).mean() == pytest.approx(0.5)

    def test_two_point_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            DiscreteDistribution.two_point(0.5, 1.5)


class TestQueries:
    @pytest.fixture
    def simple(self) -> DiscreteDistribution:
        return DiscreteDistribution(
            np.array([0.0, 0.1, 0.2, 0.5]), np.array([0.4, 0.3, 0.2, 0.1])
        )

    def test_mean_and_variance(self, simple: DiscreteDistribution):
        expected_mean = 0.3 * 0.1 + 0.2 * 0.2 + 0.1 * 0.5
        assert simple.mean() == pytest.approx(expected_mean)
        expected_var = (
            0.4 * expected_mean**2
            + 0.3 * (0.1 - expected_mean) ** 2
            + 0.2 * (0.2 - expected_mean) ** 2
            + 0.1 * (0.5 - expected_mean) ** 2
        )
        assert simple.variance() == pytest.approx(expected_var)
        assert simple.std() == pytest.approx(np.sqrt(expected_var))

    def test_cdf_scalar_and_array(self, simple: DiscreteDistribution):
        assert simple.cdf(-0.01) == pytest.approx(0.0)
        assert simple.cdf(0.0) == pytest.approx(0.4)
        assert simple.cdf(0.15) == pytest.approx(0.7)
        assert simple.cdf(1.0) == pytest.approx(1.0)
        np.testing.assert_allclose(simple.cdf(np.array([0.0, 0.2])), [0.4, 0.9])

    def test_survival(self, simple: DiscreteDistribution):
        assert simple.survival(0.1) == pytest.approx(0.3)

    def test_quantile(self, simple: DiscreteDistribution):
        assert simple.quantile(0.0) == pytest.approx(0.0)
        assert simple.quantile(0.4) == pytest.approx(0.0)
        assert simple.quantile(0.5) == pytest.approx(0.1)
        assert simple.quantile(0.95) == pytest.approx(0.5)
        assert simple.quantile(1.0) == pytest.approx(0.5)

    def test_quantile_rejects_bad_level(self, simple: DiscreteDistribution):
        with pytest.raises(ValueError):
            simple.quantile(1.5)

    def test_prob_zero(self, simple: DiscreteDistribution):
        assert simple.prob_zero() == pytest.approx(0.4)


class TestConvolution:
    def test_convolve_two_point_masses(self):
        a = DiscreteDistribution.point_mass(1.0)
        b = DiscreteDistribution.point_mass(2.5)
        assert a.convolve(b).support.tolist() == [3.5]

    def test_convolution_mean_adds(self):
        a = DiscreteDistribution.two_point(0.3, 0.5)
        b = DiscreteDistribution.two_point(0.2, 0.25)
        c = a.convolve(b)
        assert c.mean() == pytest.approx(a.mean() + b.mean())
        assert c.variance() == pytest.approx(a.variance() + b.variance())

    def test_convolution_support_enumeration(self):
        a = DiscreteDistribution.two_point(0.3, 0.5)
        b = DiscreteDistribution.two_point(0.2, 0.5)
        c = a.convolve(b)
        np.testing.assert_allclose(c.support, [0.0, 0.2, 0.3, 0.5])
        np.testing.assert_allclose(c.probabilities, [0.25, 0.25, 0.25, 0.25])

    def test_convolve_many_matches_sequential(self):
        components = [DiscreteDistribution.two_point(0.1 * (i + 1), 0.3) for i in range(4)]
        tree = DiscreteDistribution.convolve_many(components)
        sequential = components[0]
        for component in components[1:]:
            sequential = sequential.convolve(component)
        np.testing.assert_allclose(tree.support, sequential.support)
        np.testing.assert_allclose(tree.probabilities, sequential.probabilities)

    def test_convolve_many_empty_is_zero(self):
        distribution = DiscreteDistribution.convolve_many([])
        assert distribution.support.tolist() == [0.0]

    def test_collapse_preserves_mean(self):
        rng = np.random.default_rng(0)
        support = np.sort(rng.random(500))
        probabilities = rng.random(500)
        probabilities /= probabilities.sum()
        distribution = DiscreteDistribution(support, probabilities)
        collapsed = distribution.collapse(32)
        assert collapsed.support.size <= 32
        assert collapsed.mean() == pytest.approx(distribution.mean(), rel=1e-9)

    def test_collapse_noop_when_small(self):
        distribution = DiscreteDistribution.two_point(0.5, 0.5)
        assert distribution.collapse(100) is distribution

    def test_collapse_rejects_tiny_max_support(self):
        with pytest.raises(ValueError):
            DiscreteDistribution.two_point(0.5, 0.5).collapse(1)

    def test_convolve_with_max_support_limits_size(self):
        components = [DiscreteDistribution.two_point(0.01 * (i + 1), 0.4) for i in range(12)]
        limited = DiscreteDistribution.convolve_many(components, max_support=64)
        assert limited.support.size <= 64
        full = DiscreteDistribution.convolve_many(components)
        assert limited.mean() == pytest.approx(full.mean(), rel=1e-9)


class TestSampling:
    def test_sample_statistics(self):
        rng = np.random.default_rng(2)
        distribution = DiscreteDistribution(
            np.array([0.0, 1.0, 2.0]), np.array([0.5, 0.3, 0.2])
        )
        samples = distribution.sample(rng, 50_000)
        assert samples.mean() == pytest.approx(distribution.mean(), abs=0.02)

    def test_sample_rejects_negative(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            DiscreteDistribution.point_mass(1.0).sample(rng, -5)
