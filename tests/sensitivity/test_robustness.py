"""Tests for the combined robustness report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.sensitivity.robustness import robustness_report


@pytest.fixture
def model() -> FaultModel:
    return FaultModel(p=np.array([0.2, 0.25]), q=np.array([0.1, 0.2]))


class TestRobustnessReport:
    def test_report_structure(self, model: FaultModel):
        report = robustness_report(model, correlations=(0.0, 0.5), replications=5_000, rng=0)
        assert report.correlations == (0.0, 0.5)
        assert len(report.results) == 2
        rows = report.rows()
        assert len(rows) == 2
        assert rows[0]["correlation"] == 0.0
        for row in rows:
            assert {"mean_system_predicted", "mean_system_simulated", "risk_ratio_error"} <= set(row)

    def test_worst_relative_error_aggregation(self, model: FaultModel):
        report = robustness_report(model, correlations=(0.0, 0.6), replications=20_000, rng=1)
        worst = report.worst_relative_error("mean_system")
        assert worst >= report.results[0].relative_error("mean_system")

    def test_zero_correlation_error_small(self, model: FaultModel):
        report = robustness_report(model, correlations=(0.0,), replications=60_000, rng=2)
        assert report.results[0].relative_error("mean_single") < 0.05
