"""Tests for the correlation sensitivity study (Section 6.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.sensitivity.correlation import (
    copula_sensitivity_sweep,
    correlation_sensitivity,
)
from repro.versions.correlated import CopulaDevelopmentProcess
from repro.versions.generation import IndependentDevelopmentProcess


@pytest.fixture
def model() -> FaultModel:
    return FaultModel(p=np.array([0.2, 0.3, 0.15]), q=np.array([0.1, 0.05, 0.2]))


class TestCorrelationSensitivity:
    def test_independent_process_predictions_agree(self, model: FaultModel):
        process = IndependentDevelopmentProcess(model)
        result = correlation_sensitivity(model, process, replications=60_000, rng=0)
        assert result.relative_error("mean_single") < 0.05
        assert result.relative_error("mean_system") < 0.15
        assert result.relative_error("risk_single") < 0.05
        assert result.relative_error("risk_ratio") < 0.1

    def test_positive_correlation_breaks_fault_count_predictions(self, model: FaultModel):
        # Positive within-version correlation preserves every marginal p_i (so
        # the mean PFD prediction survives) but concentrates faults in fewer
        # versions, so P(N_1 > 0) drops below the independence prediction.
        # The sensitivity machinery must surface exactly that deviation.
        process = CopulaDevelopmentProcess(model, correlation=0.8)
        result = correlation_sensitivity(model, process, replications=60_000, rng=1)
        assert result.relative_error("mean_single") < 0.05  # marginals preserved
        assert result.simulated_risk_single < result.predicted_risk_single
        assert result.relative_error("risk_single") > 0.1

    def test_summary_structure(self, model: FaultModel):
        process = IndependentDevelopmentProcess(model)
        result = correlation_sensitivity(model, process, replications=5_000, rng=2)
        summary = result.summary()
        assert set(summary) == {
            "mean_single",
            "mean_system",
            "std_single",
            "std_system",
            "risk_single",
            "risk_system",
            "risk_ratio",
        }
        for entry in summary.values():
            assert {"predicted", "simulated", "relative_error"} <= set(entry)

    def test_relative_error_zero_cases(self, model: FaultModel):
        process = IndependentDevelopmentProcess(model)
        result = correlation_sensitivity(model, process, replications=2_000, rng=3)
        # Same value -> zero error; mismatch against a zero simulated value -> inf.
        assert result.relative_error("mean_single") >= 0.0


class TestSweep:
    def test_sweep_runs_each_correlation(self, model: FaultModel):
        sweep = copula_sensitivity_sweep(model, [-0.3, 0.0, 0.5], replications=5_000, rng=4)
        assert [correlation for correlation, _ in sweep] == [-0.3, 0.0, 0.5]
        for _, result in sweep:
            assert result.replications == 5_000

    def test_zero_correlation_entry_is_accurate(self, model: FaultModel):
        sweep = copula_sensitivity_sweep(model, [0.0], replications=60_000, rng=5)
        _, result = sweep[0]
        assert result.relative_error("mean_single") < 0.05
