"""Tests for the overlapping failure-region sensitivity study (Section 6.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demandspace.profiles import GridProfile
from repro.demandspace.regions import BoxRegion
from repro.demandspace.space import DiscreteDemandSpace
from repro.sensitivity.overlap import OverlappingRegionModel


@pytest.fixture
def grid_profile() -> GridProfile:
    return GridProfile.uniform(DiscreteDemandSpace(np.arange(10, dtype=float).reshape(-1, 1)))


@pytest.fixture
def overlapping(grid_profile: GridProfile) -> OverlappingRegionModel:
    return OverlappingRegionModel(
        probabilities=np.array([0.4, 0.5]),
        regions=[
            BoxRegion(np.array([0.0]), np.array([4.0])),  # demands 0..4, q = 0.5
            BoxRegion(np.array([3.0]), np.array([7.0])),  # demands 3..7, q = 0.5
        ],
        profile=grid_profile,
    )


class TestConstruction:
    def test_rejects_length_mismatch(self, grid_profile: GridProfile):
        with pytest.raises(ValueError):
            OverlappingRegionModel(np.array([0.1]), [], grid_profile)

    def test_rejects_bad_probabilities(self, grid_profile: GridProfile):
        with pytest.raises(ValueError):
            OverlappingRegionModel(
                np.array([1.5]), [BoxRegion(np.array([0.0]), np.array([1.0]))], grid_profile
            )

    def test_individual_impacts(self, overlapping: OverlappingRegionModel):
        np.testing.assert_allclose(overlapping.individual_impacts(), [0.5, 0.5])

    def test_as_nonoverlapping_model(self, overlapping: OverlappingRegionModel):
        model = overlapping.as_nonoverlapping_model()
        assert model.n == 2
        np.testing.assert_allclose(model.q, [0.5, 0.5])
        # sum(q) == 1 here, so it is still admissible even in strict mode, but
        # the conversion always uses strict=False to stay safe in general.
        assert model.strict is False


class TestExactPfd:
    def test_single_fault_pfd(self, overlapping: OverlappingRegionModel):
        assert overlapping.exact_pfd(np.array([True, False])) == pytest.approx(0.5)
        assert overlapping.exact_pfd(np.array([False, True])) == pytest.approx(0.5)

    def test_union_pfd_below_sum(self, overlapping: OverlappingRegionModel):
        # Regions overlap on demands 3 and 4, so the union covers 8 of the 10
        # demands rather than 10.
        assert overlapping.exact_pfd(np.array([True, True])) == pytest.approx(0.8)

    def test_no_fault_pfd_zero(self, overlapping: OverlappingRegionModel):
        assert overlapping.exact_pfd(np.array([False, False])) == 0.0

    def test_rejects_wrong_length(self, overlapping: OverlappingRegionModel):
        with pytest.raises(ValueError):
            overlapping.exact_pfd(np.array([True]))


class TestSimulation:
    def test_sum_is_pessimistic(self, overlapping: OverlappingRegionModel):
        result = overlapping.simulate(replications=30_000, rng=0)
        assert result.sum_mean_single >= result.union_mean_single - 1e-9
        assert result.sum_mean_system >= result.union_mean_system - 1e-9
        assert result.single_mean_pessimism >= 1.0 - 1e-9
        assert result.system_mean_pessimism >= 1.0 - 1e-9

    def test_disjoint_regions_show_no_pessimism(self, grid_profile: GridProfile):
        disjoint = OverlappingRegionModel(
            probabilities=np.array([0.4, 0.5]),
            regions=[
                BoxRegion(np.array([0.0]), np.array([2.0])),
                BoxRegion(np.array([5.0]), np.array([7.0])),
            ],
            profile=grid_profile,
        )
        result = disjoint.simulate(replications=30_000, rng=1)
        assert result.single_mean_pessimism == pytest.approx(1.0, rel=0.05)
        assert result.system_mean_pessimism == pytest.approx(1.0, rel=0.2)

    def test_rejects_tiny_replication_count(self, overlapping: OverlappingRegionModel):
        with pytest.raises(ValueError):
            overlapping.simulate(replications=1)
