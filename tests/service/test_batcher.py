"""Tests for the micro-batcher: grouping, coalescing, fallbacks, failures."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import evaluate, evaluate_sweep
from repro.service import worker
from repro.service.batcher import MicroBatcher
from repro.service.protocol import parse_evaluate_payload


class Recorder:
    """A run_in_pool that executes the real worker functions synchronously
    while recording every dispatch, plus the group-metrics callback feed."""

    def __init__(self) -> None:
        self.calls: list[tuple[str, tuple]] = []
        self.groups: list[tuple[int, int, bool]] = []

    async def run(self, function, arguments):
        self.calls.append((function.__name__, arguments))
        return function(arguments)

    def on_group(self, group_size: int, unique: int, batched: bool) -> None:
        self.groups.append((group_size, unique, batched))


def _request(model, method="exact", seed=None, p_scale=1.0, **options):
    payload = {"model": model.to_dict(), "method": method, "p_scale": p_scale}
    if seed is not None:
        payload["seed"] = seed
    if options:
        payload["options"] = options
    return parse_evaluate_payload(payload)


def _submit_all(batcher, requests):
    async def run():
        return await asyncio.gather(
            *(batcher.submit(request, request.digest()) for request in requests)
        )

    return asyncio.run(run())


class TestGrouping:
    def test_concurrent_sweep_points_become_one_group(self, small_model):
        recorder = Recorder()
        batcher = MicroBatcher(recorder.run, window_seconds=0.01, on_group=recorder.on_group)
        requests = [
            _request(small_model, p_scale=scale, max_support=256)
            for scale in (0.25, 0.5, 0.75)
        ]
        outcomes = _submit_all(batcher, requests)
        assert [name for name, _ in recorder.calls] == ["evaluate_group"]
        assert recorder.groups == [(3, 3, True)]
        reference = evaluate_sweep(
            small_model,
            "exact",
            [{"p_scale": scale} for scale in (0.25, 0.5, 0.75)],
            max_support=256,
        )
        for (record, meta), expected in zip(outcomes, reference):
            assert record["metrics"] == expected.to_dict()["metrics"]
            assert meta == {"batched": True, "group_size": 3}

    def test_duplicates_coalesce_into_one_variation(self, small_model):
        recorder = Recorder()
        batcher = MicroBatcher(recorder.run, window_seconds=0.01, on_group=recorder.on_group)
        requests = [_request(small_model, p_scale=0.5, max_support=256)] * 3 + [
            _request(small_model, p_scale=1.0, max_support=256)
        ]
        outcomes = _submit_all(batcher, requests)
        (name, arguments), = recorder.calls
        assert name == "evaluate_group"
        variations = arguments[3]
        assert variations == (
            {"p_scale": 0.5, "q_scale": 1.0},
            {"p_scale": 1.0, "q_scale": 1.0},
        )
        assert recorder.groups == [(4, 2, True)]
        assert outcomes[0][0] == outcomes[1][0] == outcomes[2][0]
        assert outcomes[3][0] != outcomes[0][0]

    def test_all_duplicates_dispatch_scalar(self, small_model):
        # One distinct point must not flow through the sweep kernel: its
        # value cannot depend on how many clients asked for it.
        recorder = Recorder()
        batcher = MicroBatcher(recorder.run, window_seconds=0.01, on_group=recorder.on_group)
        requests = [_request(small_model, p_scale=0.5, max_support=256)] * 2
        outcomes = _submit_all(batcher, requests)
        assert [name for name, _ in recorder.calls] == ["evaluate_single"]
        assert recorder.groups == [(2, 1, False)]
        expected = evaluate(small_model.rescaled(0.5, 1.0), "exact", max_support=256)
        assert outcomes[0][0]["metrics"] == expected.to_dict()["metrics"]
        assert outcomes[0][1] == {"batched": False, "group_size": 2}

    def test_different_seeds_split_groups(self, small_model):
        recorder = Recorder()
        batcher = MicroBatcher(recorder.run, window_seconds=0.01, on_group=recorder.on_group)
        requests = [
            _request(small_model, method="montecarlo", seed=1, p_scale=0.5, replications=500),
            _request(small_model, method="montecarlo", seed=1, p_scale=1.0, replications=500),
            _request(small_model, method="montecarlo", seed=2, p_scale=0.5, replications=500),
        ]
        _submit_all(batcher, requests)
        assert sorted(name for name, _ in recorder.calls) == [
            "evaluate_group",
            "evaluate_single",
        ]

    def test_non_batchable_method_dispatches_immediately(self, small_model):
        recorder = Recorder()
        batcher = MicroBatcher(recorder.run, window_seconds=0.01, on_group=recorder.on_group)
        requests = [_request(small_model, method="moments", p_scale=s) for s in (0.5, 1.0)]
        _submit_all(batcher, requests)
        assert [name for name, _ in recorder.calls] == ["evaluate_single"] * 2
        assert recorder.groups == [(1, 1, False)] * 2

    def test_batch_disabled_is_all_scalar(self, small_model):
        recorder = Recorder()
        batcher = MicroBatcher(
            recorder.run, window_seconds=0.01, batch=False, on_group=recorder.on_group
        )
        requests = [
            _request(small_model, p_scale=scale, max_support=256) for scale in (0.25, 0.5)
        ]
        outcomes = _submit_all(batcher, requests)
        assert [name for name, _ in recorder.calls] == ["evaluate_single"] * 2
        for (record, _), scale in zip(outcomes, (0.25, 0.5)):
            expected = evaluate(small_model.rescaled(scale, 1.0), "exact", max_support=256)
            assert record["metrics"] == expected.to_dict()["metrics"]

    def test_lone_request_takes_the_scalar_path(self, small_model):
        recorder = Recorder()
        batcher = MicroBatcher(recorder.run, window_seconds=0.001, on_group=recorder.on_group)
        outcomes = _submit_all(batcher, [_request(small_model, p_scale=0.5, max_support=256)])
        assert [name for name, _ in recorder.calls] == ["evaluate_single"]
        expected = evaluate(small_model.rescaled(0.5, 1.0), "exact", max_support=256)
        assert outcomes[0][0]["metrics"] == expected.to_dict()["metrics"]


class TestGroupFallback:
    """Group isolation: a failed batched call re-dispatches point by point."""

    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        from repro import faults

        faults.clear()
        yield
        faults.clear()

    def _fallback_batcher(self, recorder):
        fallbacks = []
        batcher = MicroBatcher(
            recorder.run,
            window_seconds=0.01,
            on_group=recorder.on_group,
            on_fallback=lambda: fallbacks.append(1),
        )
        return batcher, fallbacks

    def test_failed_group_call_falls_back_byte_identical(self, small_model):
        from repro import faults

        faults.inject("worker.group", error=RuntimeError, message="kernel died", export_env=False)
        recorder = Recorder()
        batcher, fallbacks = self._fallback_batcher(recorder)
        scales = (0.25, 0.5, 0.75)
        outcomes = _submit_all(
            batcher,
            [_request(small_model, p_scale=scale, max_support=256) for scale in scales],
        )
        # One (failed) group dispatch, then one scalar call per distinct point.
        assert [name for name, _ in recorder.calls] == [
            "evaluate_group", "evaluate_single", "evaluate_single", "evaluate_single",
        ]
        assert fallbacks == [1]
        assert recorder.groups == [(3, 3, False)]
        for (record, meta), scale in zip(outcomes, scales):
            expected = evaluate(small_model.rescaled(scale, 1.0), "exact", max_support=256)
            assert record["metrics"] == expected.to_dict()["metrics"]
            assert meta == {"batched": False, "group_size": 3, "fallback": True}

    def test_one_bad_point_answers_alone(self, small_model):
        from repro import faults

        faults.inject("worker.group", error=RuntimeError, times=1, export_env=False)
        # The three fallback scalar calls hit "worker.evaluate" 1, 2, 3:
        # only the second point (p_scale 0.5) fails.
        faults.inject("worker.evaluate", error=ValueError, message="bad point", every=2, export_env=False)
        recorder = Recorder()
        batcher, fallbacks = self._fallback_batcher(recorder)
        scales = (0.25, 0.5, 0.75)
        requests = [_request(small_model, p_scale=scale, max_support=256) for scale in scales]

        async def run():
            return await asyncio.gather(
                *(batcher.submit(request, request.digest()) for request in requests),
                return_exceptions=True,
            )

        outcomes = asyncio.run(run())
        assert fallbacks == [1]
        assert isinstance(outcomes[1], ValueError)
        for index in (0, 2):
            record, meta = outcomes[index]
            expected = evaluate(
                small_model.rescaled(scales[index], 1.0), "exact", max_support=256
            )
            assert record["metrics"] == expected.to_dict()["metrics"]
            assert meta["fallback"] is True

    def test_fallback_still_coalesces_duplicates(self, small_model):
        from repro import faults

        faults.inject("worker.group", error=RuntimeError, times=1, export_env=False)
        recorder = Recorder()
        batcher, fallbacks = self._fallback_batcher(recorder)
        requests = [_request(small_model, p_scale=0.5, max_support=256)] * 2 + [
            _request(small_model, p_scale=1.0, max_support=256)
        ]
        outcomes = _submit_all(batcher, requests)
        assert fallbacks == [1]
        # Two distinct points -> two scalar calls, not three.
        assert [name for name, _ in recorder.calls] == [
            "evaluate_group", "evaluate_single", "evaluate_single",
        ]
        assert recorder.groups == [(3, 2, False)]
        assert outcomes[0][0] == outcomes[1][0]
        assert outcomes[2][0] != outcomes[0][0]


class TestFailures:
    def test_worker_error_reaches_every_waiter(self, small_model):
        async def broken(function, arguments):
            raise RuntimeError("pool exploded")

        batcher = MicroBatcher(broken, window_seconds=0.01)
        requests = [
            _request(small_model, p_scale=scale, max_support=256) for scale in (0.25, 0.5)
        ]

        async def run():
            outcomes = await asyncio.gather(
                *(batcher.submit(request, request.digest()) for request in requests),
                return_exceptions=True,
            )
            return outcomes

        outcomes = asyncio.run(run())
        assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError, match="non-negative"):
            MicroBatcher(lambda *a: None, window_seconds=-1.0)


class TestFlushAll:
    def test_flush_all_short_circuits_the_window(self, small_model):
        recorder = Recorder()
        # A one-hour window: only flush_all can dispatch.
        batcher = MicroBatcher(recorder.run, window_seconds=3600.0, on_group=recorder.on_group)

        async def run():
            tasks = [
                asyncio.ensure_future(batcher.submit(request, request.digest()))
                for request in (
                    _request(small_model, p_scale=0.25, max_support=256),
                    _request(small_model, p_scale=0.5, max_support=256),
                )
            ]
            await asyncio.sleep(0)  # let the submits register
            assert batcher.pending_requests == 2
            await batcher.flush_all()
            return await asyncio.gather(*tasks)

        outcomes = asyncio.run(run())
        assert len(outcomes) == 2
        assert recorder.groups == [(2, 2, True)]
        assert batcher.pending_requests == 0
