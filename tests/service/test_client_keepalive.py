"""Client keep-alive: connection reuse, per-thread isolation, reconnects.

Real sockets: the reuse and stale-connection behaviours live below
``_request_once``, so the scripted-transport idiom of
``test_client_retry.py`` cannot reach them.
"""

from __future__ import annotations

import http.server
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import EvaluationServer, ServiceClient, start_in_background


class TestConnectionReuse:
    def test_sequential_requests_share_one_connection(self):
        server = EvaluationServer(batch_window_ms=1.0)
        with start_in_background(server) as handle:
            client = ServiceClient(port=handle.port)
            for _ in range(3):
                assert client.health()["status"] in ("ok", "draining")
            assert client.stats == {"connections_opened": 1, "reconnects": 0}
            client.close()

    def test_threads_get_their_own_connections(self):
        """One connection per thread: http.client connections are not
        thread-safe, so sharing would corrupt interleaved exchanges."""
        server = EvaluationServer(batch_window_ms=1.0)
        with start_in_background(server) as handle:
            client = ServiceClient(port=handle.port)
            barrier = threading.Barrier(2)

            def probe():
                barrier.wait(5.0)  # both threads hold a connection at once
                return client.health()["status"]

            with ThreadPoolExecutor(max_workers=2) as pool:
                statuses = list(pool.map(lambda _: probe(), range(2)))
            assert statuses == ["ok", "ok"]
            assert client.stats["connections_opened"] == 2
            assert client.stats["reconnects"] == 0
            client.close()

    def test_close_drops_the_calling_threads_connection(self):
        server = EvaluationServer(batch_window_ms=1.0)
        with start_in_background(server) as handle:
            with ServiceClient(port=handle.port) as client:
                client.health()
                client.close()
                client.health()  # reopens transparently
                assert client.stats["connections_opened"] == 2
                assert client.stats["reconnects"] == 0


class _OneShotHandler(http.server.BaseHTTPRequestHandler):
    """Answers one request per TCP connection, then closes it silently --
    the keep-alive betrayal a restarted or idle-timeouting server commits."""

    protocol_version = "HTTP/1.1"

    def do_GET(self):
        body = json.dumps({"status": "ok"}).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.close_connection = True  # no Connection: close header sent

    def log_message(self, *args):
        pass


class TestReconnect:
    def test_stale_kept_alive_connection_reconnects_once(self):
        stub = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _OneShotHandler)
        thread = threading.Thread(target=stub.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(port=stub.server_address[1], retries=0)
            assert client.health()["status"] == "ok"  # opens connection 1
            # The stub closed connection 1 after answering; this request
            # finds it stale and must retry once on a fresh connection --
            # invisibly to the caller, visibly in the stats.
            assert client.health()["status"] == "ok"
            assert client.stats["connections_opened"] == 2
            assert client.stats["reconnects"] == 1
            client.close()
        finally:
            stub.shutdown()
            thread.join(5.0)

    def test_fresh_connection_failure_is_a_real_error(self):
        """EOF on a *fresh* connection is the server being down, not a stale
        keep-alive -- it must raise, not loop reconnecting."""
        probe = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _OneShotHandler)
        port = probe.server_address[1]
        probe.server_close()  # nothing listens on this port now
        client = ServiceClient(port=port, retries=0)
        with pytest.raises(ConnectionError):
            client.health()
        assert client.stats["reconnects"] == 0
