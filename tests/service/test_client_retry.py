"""Client-side retry tests: backoff schedule, typed errors, mocked clock.

No sockets: ``_request_once`` is replaced by a scripted transport and the
``sleep`` / ``rng`` injection seams record the exact backoff schedule.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceClient, ServiceError
from repro.service.client import RETRYABLE_STATUSES, _parse_retry_after


def _scripted_client(failures, *, retries=3, rng=lambda: 1.0, **kwargs):
    """A client whose transport raises ``failures`` in order, then succeeds."""
    sleeps: list[float] = []
    client = ServiceClient(
        retries=retries,
        backoff_base=0.1,
        backoff_max=0.4,
        sleep=sleeps.append,
        rng=rng,
        **kwargs,
    )
    script = list(failures)
    calls = {"count": 0}

    def transport(verb, path, payload=None):
        calls["count"] += 1
        if script:
            raise script.pop(0)
        return {"ok": True}

    client._request_once = transport
    return client, sleeps, calls


class TestBackoffSchedule:
    def test_exponential_schedule_with_cap(self):
        client, sleeps, calls = _scripted_client(
            [
                ServiceError(429, "busy", code="saturated"),
                ServiceError(503, "draining", code="draining"),
                ConnectionError("refused"),
            ]
        )
        assert client._request("POST", "/v1/evaluate", {}) == {"ok": True}
        # rng pinned to 1.0: delays are exactly base * 2**attempt, capped.
        assert sleeps == [0.1, 0.2, 0.4]
        assert calls["count"] == 4

    def test_retry_after_extends_the_delay(self):
        client, sleeps, _ = _scripted_client(
            [ServiceError(429, "busy", code="saturated", retry_after=1.5)]
        )
        assert client._request("GET", "/healthz") == {"ok": True}
        assert sleeps == [1.5]

    def test_jitter_scales_into_the_half_open_band(self):
        client, _, _ = _scripted_client([], rng=lambda: 0.0)
        assert client.backoff_delay(0) == pytest.approx(0.05)  # 0.1 * 0.5
        client, _, _ = _scripted_client([], rng=lambda: 1.0)
        assert client.backoff_delay(3) == pytest.approx(0.4)  # capped at backoff_max

    def test_non_retryable_status_raises_immediately(self):
        client, sleeps, calls = _scripted_client(
            [ServiceError(400, "unknown method", code="bad_request")]
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/evaluate", {})
        assert excinfo.value.status == 400
        assert sleeps == []
        assert calls["count"] == 1

    def test_exhausted_retries_raise_the_last_error(self):
        client, sleeps, calls = _scripted_client(
            [ServiceError(503, "draining", code="draining")] * 5, retries=2
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/methods")
        assert excinfo.value.status == 503
        assert len(sleeps) == 2
        assert calls["count"] == 3

    def test_zero_retries_disables_retrying(self):
        client, sleeps, calls = _scripted_client([ConnectionError("refused")], retries=0)
        with pytest.raises(ConnectionError):
            client._request("GET", "/healthz")
        assert sleeps == [] and calls["count"] == 1

    def test_connection_errors_are_retried(self):
        client, sleeps, calls = _scripted_client(
            [ConnectionRefusedError("down"), TimeoutError("slow")]
        )
        assert client._request("GET", "/healthz") == {"ok": True}
        assert calls["count"] == 3 and len(sleeps) == 2

    def test_rejects_bad_retry_configuration(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient(retries=-1)
        with pytest.raises(ValueError, match="positive"):
            ServiceClient(backoff_base=0.0)


class TestServiceErrorTyping:
    def test_message_carries_status_and_code(self):
        error = ServiceError(429, "server saturated", code="saturated", retry_after=2.0)
        assert str(error) == "HTTP 429 [saturated]: server saturated"
        assert error.status == 429
        assert error.detail == "server saturated"
        assert error.code == "saturated"
        assert error.retry_after == 2.0
        assert error.retryable is True

    def test_unknown_code_spelling(self):
        error = ServiceError(502, "proxy said no")
        assert str(error) == "HTTP 502 [unknown]: proxy said no"
        assert error.code is None
        assert error.retryable is False

    def test_retryable_statuses_are_the_transient_ones(self):
        assert RETRYABLE_STATUSES == {429, 503}

    def test_retry_after_parsing(self):
        assert _parse_retry_after(None) is None
        assert _parse_retry_after("1.5") == 1.5
        assert _parse_retry_after("0") == 0.0
        assert _parse_retry_after("-2") is None
        assert _parse_retry_after("Wed, 21 Oct 2026 07:28:00 GMT") is None


class TestRetryBudget:
    """``max_elapsed_s`` caps the *total* time spent retrying one request."""

    def _budgeted_client(self, failures, *, max_elapsed_s, retries=5):
        """A scripted client whose clock advances by each recorded sleep."""
        now = {"t": 0.0}
        sleeps: list[float] = []

        def sleep(delay: float) -> None:
            sleeps.append(delay)
            now["t"] += delay

        client = ServiceClient(
            retries=retries,
            backoff_base=0.1,
            backoff_max=0.4,
            max_elapsed_s=max_elapsed_s,
            sleep=sleep,
            rng=lambda: 1.0,
            clock=lambda: now["t"],
        )
        script = list(failures)
        calls = {"count": 0}

        def transport(verb, path, payload=None):
            calls["count"] += 1
            if script:
                raise script.pop(0)
            return {"ok": True}

        client._request_once = transport
        return client, sleeps, calls, now

    def test_budget_expiry_raises_the_last_typed_error(self):
        client, sleeps, calls, _ = self._budgeted_client(
            [ServiceError(503, "draining", code="draining")] * 10,
            max_elapsed_s=0.25,
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/methods")
        # Delays would be 0.1, 0.2, ...; the second sleep overruns 0.25 s,
        # so the client stops after one sleep and surfaces the typed 503.
        assert excinfo.value.status == 503
        assert sleeps == [0.1]
        assert calls["count"] == 2

    def test_budget_expiry_raises_transport_error_when_never_answered(self):
        client, sleeps, calls, _ = self._budgeted_client(
            [ConnectionRefusedError("down")] * 10, max_elapsed_s=0.05
        )
        with pytest.raises(ConnectionRefusedError):
            client._request("GET", "/healthz")
        assert sleeps == []  # even the first 0.1 s sleep would overrun
        assert calls["count"] == 1

    def test_generous_budget_changes_nothing(self):
        client, sleeps, calls, _ = self._budgeted_client(
            [ServiceError(429, "busy", code="saturated")] * 2,
            max_elapsed_s=60.0,
        )
        assert client._request("POST", "/v1/evaluate", {}) == {"ok": True}
        assert sleeps == [0.1, 0.2]
        assert calls["count"] == 3

    def test_retry_after_counts_against_the_budget(self):
        client, sleeps, calls, _ = self._budgeted_client(
            [
                ServiceError(429, "busy", code="saturated", retry_after=5.0),
                ServiceError(429, "busy", code="saturated", retry_after=5.0),
            ],
            max_elapsed_s=6.0,
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/evaluate", {})
        # One honoured Retry-After (5 s) fits; a second would overrun.
        assert excinfo.value.status == 429
        assert sleeps == [5.0]
        assert calls["count"] == 2

    def test_default_is_unbudgeted(self):
        client = ServiceClient()
        assert client.max_elapsed_s is None

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="max_elapsed_s"):
            ServiceClient(max_elapsed_s=0.0)
        with pytest.raises(ValueError, match="max_elapsed_s"):
            ServiceClient(max_elapsed_s=-1.0)
