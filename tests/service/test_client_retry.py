"""Client-side retry tests: backoff schedule, typed errors, mocked clock.

No sockets: ``_request_once`` is replaced by a scripted transport and the
``sleep`` / ``rng`` injection seams record the exact backoff schedule.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceClient, ServiceError
from repro.service.client import RETRYABLE_STATUSES, _parse_retry_after


def _scripted_client(failures, *, retries=3, rng=lambda: 1.0, **kwargs):
    """A client whose transport raises ``failures`` in order, then succeeds."""
    sleeps: list[float] = []
    client = ServiceClient(
        retries=retries,
        backoff_base=0.1,
        backoff_max=0.4,
        sleep=sleeps.append,
        rng=rng,
        **kwargs,
    )
    script = list(failures)
    calls = {"count": 0}

    def transport(verb, path, payload=None):
        calls["count"] += 1
        if script:
            raise script.pop(0)
        return {"ok": True}

    client._request_once = transport
    return client, sleeps, calls


class TestBackoffSchedule:
    def test_exponential_schedule_with_cap(self):
        client, sleeps, calls = _scripted_client(
            [
                ServiceError(429, "busy", code="saturated"),
                ServiceError(503, "draining", code="draining"),
                ConnectionError("refused"),
            ]
        )
        assert client._request("POST", "/v1/evaluate", {}) == {"ok": True}
        # rng pinned to 1.0: delays are exactly base * 2**attempt, capped.
        assert sleeps == [0.1, 0.2, 0.4]
        assert calls["count"] == 4

    def test_retry_after_extends_the_delay(self):
        client, sleeps, _ = _scripted_client(
            [ServiceError(429, "busy", code="saturated", retry_after=1.5)]
        )
        assert client._request("GET", "/healthz") == {"ok": True}
        assert sleeps == [1.5]

    def test_jitter_scales_into_the_half_open_band(self):
        client, _, _ = _scripted_client([], rng=lambda: 0.0)
        assert client.backoff_delay(0) == pytest.approx(0.05)  # 0.1 * 0.5
        client, _, _ = _scripted_client([], rng=lambda: 1.0)
        assert client.backoff_delay(3) == pytest.approx(0.4)  # capped at backoff_max

    def test_non_retryable_status_raises_immediately(self):
        client, sleeps, calls = _scripted_client(
            [ServiceError(400, "unknown method", code="bad_request")]
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/evaluate", {})
        assert excinfo.value.status == 400
        assert sleeps == []
        assert calls["count"] == 1

    def test_exhausted_retries_raise_the_last_error(self):
        client, sleeps, calls = _scripted_client(
            [ServiceError(503, "draining", code="draining")] * 5, retries=2
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/methods")
        assert excinfo.value.status == 503
        assert len(sleeps) == 2
        assert calls["count"] == 3

    def test_zero_retries_disables_retrying(self):
        client, sleeps, calls = _scripted_client([ConnectionError("refused")], retries=0)
        with pytest.raises(ConnectionError):
            client._request("GET", "/healthz")
        assert sleeps == [] and calls["count"] == 1

    def test_connection_errors_are_retried(self):
        client, sleeps, calls = _scripted_client(
            [ConnectionRefusedError("down"), TimeoutError("slow")]
        )
        assert client._request("GET", "/healthz") == {"ok": True}
        assert calls["count"] == 3 and len(sleeps) == 2

    def test_rejects_bad_retry_configuration(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient(retries=-1)
        with pytest.raises(ValueError, match="positive"):
            ServiceClient(backoff_base=0.0)


class TestServiceErrorTyping:
    def test_message_carries_status_and_code(self):
        error = ServiceError(429, "server saturated", code="saturated", retry_after=2.0)
        assert str(error) == "HTTP 429 [saturated]: server saturated"
        assert error.status == 429
        assert error.detail == "server saturated"
        assert error.code == "saturated"
        assert error.retry_after == 2.0
        assert error.retryable is True

    def test_unknown_code_spelling(self):
        error = ServiceError(502, "proxy said no")
        assert str(error) == "HTTP 502 [unknown]: proxy said no"
        assert error.code is None
        assert error.retryable is False

    def test_retryable_statuses_are_the_transient_ones(self):
        assert RETRYABLE_STATUSES == {429, 503}

    def test_retry_after_parsing(self):
        assert _parse_retry_after(None) is None
        assert _parse_retry_after("1.5") == 1.5
        assert _parse_retry_after("0") == 0.0
        assert _parse_retry_after("-2") is None
        assert _parse_retry_after("Wed, 21 Oct 2026 07:28:00 GMT") is None
