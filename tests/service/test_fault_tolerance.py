"""Fault-tolerance tests: crash recovery, backpressure, deadlines, draining.

These drive the server's admission/retry machinery deterministically --
event-controlled coroutines instead of wall-clock races -- plus two real
process-pool crash scenarios armed through the failpoint registry.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import faults
from repro.api import evaluate, evaluate_sweep
from repro.service import (
    EvaluationServer,
    ServiceClient,
    ServiceError,
    WorkerCrashError,
    start_in_background,
)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def _strip_elapsed(record: dict) -> dict:
    return {key: value for key, value in record.items() if key != "elapsed_seconds"}


class TestPoolRestart:
    def test_worker_crash_rebuilds_the_pool_and_retries_byte_identical(self, small_model):
        # Pool of one worker; the crash failpoint fires on its second hit,
        # so request A succeeds, request B crashes the worker once and its
        # retry (a fresh process, counting from zero) succeeds.
        faults.inject("worker.crash", crash=True, every=2)
        server = EvaluationServer(workers=1, batch_window_ms=1.0)
        try:

            async def run():
                first = await server._serve_evaluate(
                    {"model": small_model.to_dict(), "method": "moments"}
                )
                second = await server._serve_evaluate(
                    {"model": small_model.to_dict(), "method": "moments", "p_scale": 0.5}
                )
                return first, second

            first, second = asyncio.run(run())
            assert server.metrics["pool_restarts"] == 1
            assert server.metrics["retried_jobs"] == 1
            assert server.metrics["poison_jobs"] == 0
            assert _strip_elapsed(first["result"]) == _strip_elapsed(
                evaluate(small_model, "moments").to_dict()
            )
            assert _strip_elapsed(second["result"]) == _strip_elapsed(
                evaluate(small_model.rescaled(0.5, 1.0), "moments").to_dict()
            )
        finally:
            asyncio.run(server.aclose(drain_seconds=0.0))

    def test_poison_job_fails_typed_after_one_retry(self, small_model):
        # Crashing on every hit: the job kills the pool, kills the rebuilt
        # pool on its retry, and must then fail as WorkerCrashError instead
        # of restart-looping.
        faults.inject("worker.crash", crash=True)
        server = EvaluationServer(workers=1, batch_window_ms=1.0)
        try:
            with pytest.raises(WorkerCrashError, match="not retried again"):
                asyncio.run(
                    server._serve_evaluate(
                        {"model": small_model.to_dict(), "method": "moments"}
                    )
                )
            assert server.metrics["pool_restarts"] == 2
            assert server.metrics["retried_jobs"] == 1
            assert server.metrics["poison_jobs"] == 1
        finally:
            asyncio.run(server.aclose(drain_seconds=0.0))

    def test_worker_crash_maps_to_a_typed_500(self, small_model):
        faults.inject("worker.crash", crash=True)
        server = EvaluationServer(workers=1, batch_window_ms=1.0)
        try:
            body = json.dumps({"model": small_model.to_dict(), "method": "moments"})
            status, payload, _ = asyncio.run(
                server._route("POST", "/v1/evaluate", body.encode())
            )
            assert status == 500
            assert payload["code"] == "worker_crash"
        finally:
            asyncio.run(server.aclose(drain_seconds=0.0))


class TestAdmissionControl:
    def test_saturation_answers_429_with_retry_after(self):
        server = EvaluationServer(batch_window_ms=1.0, max_inflight=1, max_queue=0)

        async def run():
            release = asyncio.Event()

            async def slow():
                await release.wait()
                return {"ok": True}

            async def rejected():
                return {}  # pragma: no cover - closed unawaited

            first = asyncio.ensure_future(server._admit(slow(), None))
            await asyncio.sleep(0)  # let the first request take the slot
            overflow = await server._admit(rejected(), None)
            release.set()
            return overflow, await first

        (status, payload, headers), (first_status, first_payload, _) = asyncio.run(run())
        assert status == 429
        assert payload["code"] == "saturated"
        assert headers["Retry-After"] == "1"
        assert server.metrics["rejected_saturated"] == 1
        assert (first_status, first_payload) == (200, {"ok": True})

    def test_queue_headroom_admits_before_rejecting(self):
        server = EvaluationServer(batch_window_ms=1.0, max_inflight=1, max_queue=1)

        async def run():
            release = asyncio.Event()

            async def slow(tag):
                await release.wait()
                return {"tag": tag}

            async def rejected():
                return {}  # pragma: no cover - closed unawaited

            first = asyncio.ensure_future(server._admit(slow("running"), None))
            await asyncio.sleep(0)
            second = asyncio.ensure_future(server._admit(slow("queued"), None))
            await asyncio.sleep(0)  # the second request is now waiting for a slot
            overflow = await server._admit(rejected(), None)
            release.set()
            return overflow, await first, await second

        overflow, first, second = asyncio.run(run())
        assert overflow[0] == 429
        assert first[0] == 200 and first[1] == {"tag": "running"}
        assert second[0] == 200 and second[1] == {"tag": "queued"}
        assert server.metrics["rejected_saturated"] == 1

    def test_draining_answers_503(self):
        server = EvaluationServer(batch_window_ms=1.0)

        async def run():
            await server.aclose(drain_seconds=0.0)

            async def rejected():
                return {}  # pragma: no cover - closed unawaited

            return await server._admit(rejected(), None)

        status, payload, headers = asyncio.run(run())
        assert status == 503
        assert payload["code"] == "draining"
        assert headers["Retry-After"] == "1"
        assert server.metrics["rejected_draining"] == 1


class TestDeadlines:
    def test_overrun_answers_504(self):
        server = EvaluationServer(batch_window_ms=1.0)

        async def hang():
            await asyncio.sleep(60)

        status, payload, _ = asyncio.run(server._admit(hang(), 30.0))
        assert status == 504
        assert payload["code"] == "deadline_exceeded"
        assert "30 ms" in payload["error"]
        assert server.metrics["deadline_timeouts"] == 1

    def test_server_default_applies_and_request_overrides(self):
        server = EvaluationServer(batch_window_ms=1.0, request_timeout_ms=20.0)

        async def hang():
            await asyncio.sleep(60)

        async def quick():
            return {"ok": True}

        status, payload, _ = asyncio.run(server._admit(hang(), None))
        assert (status, payload["code"]) == (504, "deadline_exceeded")
        # A generous per-request deadline overrides the tight server default.
        status, payload, _ = asyncio.run(server._admit(quick(), 60_000.0))
        assert (status, payload) == (200, {"ok": True})

    def test_bad_timeout_spelling_is_400_not_admitted(self, small_model):
        server = EvaluationServer(batch_window_ms=1.0)
        body = json.dumps(
            {"model": small_model.to_dict(), "method": "moments", "timeout_ms": -5}
        )
        status, payload, _ = asyncio.run(server._route("POST", "/v1/evaluate", body.encode()))
        assert status == 400
        assert payload["code"] == "bad_request"
        assert "timeout_ms" in payload["error"]

    def test_timed_out_waiter_does_not_poison_its_group(self, small_model):
        # Two batchable requests share a window; one carries a 1 ms deadline
        # that fires long before the 60 ms window closes.  The survivor must
        # still get the full-group batched result.
        server = EvaluationServer(batch_window_ms=60.0)

        def body(scale, timeout_ms=None):
            payload = {
                "model": small_model.to_dict(),
                "method": "exact",
                "options": {"max_support": 256},
                "p_scale": scale,
            }
            if timeout_ms is not None:
                payload["timeout_ms"] = timeout_ms
            return json.dumps(payload).encode()

        async def run():
            return await asyncio.gather(
                server._route("POST", "/v1/evaluate", body(0.5, timeout_ms=1)),
                server._route("POST", "/v1/evaluate", body(1.0)),
            )

        (timed_out, survived) = asyncio.run(run())
        assert timed_out[0] == 504
        assert survived[0] == 200
        assert survived[1]["served"]["batched"] is True
        assert survived[1]["served"]["group_size"] == 2
        reference = evaluate_sweep(
            small_model, "exact", [{"p_scale": 0.5}, {"p_scale": 1.0}], max_support=256
        )
        assert survived[1]["result"]["metrics"] == reference[1].to_dict()["metrics"]
        assert server.metrics["deadline_timeouts"] == 1


class TestWireRobustness:
    def test_draining_and_errors_are_typed_on_the_wire(self, small_model):
        server = EvaluationServer(batch_window_ms=1.0)
        with start_in_background(server) as handle:
            client = ServiceClient(port=handle.port, retries=0)
            assert client.health()["draining"] is False
            server._draining = True
            try:
                with pytest.raises(ServiceError) as excinfo:
                    client.evaluate(small_model, "moments")
                error = excinfo.value
                assert error.status == 503
                assert error.code == "draining"
                assert error.retry_after == 1.0
                assert error.retryable is True
                # Liveness endpoints keep answering while draining.
                assert client.health()["draining"] is True
                assert client.metrics()["rejected_draining"] == 1
            finally:
                server._draining = False
            result = client.evaluate(small_model, "moments")
            assert result.metric_dict() == evaluate(small_model, "moments").to_dict()["metrics"]

    def test_startup_timeout_raises_instead_of_half_starting(self):
        server = EvaluationServer(batch_window_ms=1.0)

        async def stalled(host, port):
            await asyncio.sleep(60)

        server.start = stalled
        with pytest.raises(RuntimeError, match=r"within 0\.2s"):
            start_in_background(server, startup_timeout=0.2)


class TestAdmissionAtomicity:
    """Admission accounting is synchronous with the saturation check.

    The queued reservation happens before the first ``await`` and the check
    compares the combined total, so a burst arriving in ONE event-loop tick
    -- when nothing has started running yet and a stale per-counter check
    would admit everything -- still admits exactly
    ``max_inflight + max_queue`` requests, and a ``/metrics`` snapshot taken
    mid-burst reads the same numbers admission control used.
    """

    def test_same_tick_burst_admits_exactly_capacity(self):
        server = EvaluationServer(batch_window_ms=1.0, max_inflight=2, max_queue=2)

        async def run():
            release = asyncio.Event()

            async def slow():
                await release.wait()
                return {}

            futures = [
                asyncio.ensure_future(server._admit(slow(), None)) for _ in range(5)
            ]
            await asyncio.sleep(0)  # every admission check ran in one tick
            mid_burst = (
                server.registry["queued_requests"],
                server.registry["running_requests"],
            )
            release.set()
            results = await asyncio.gather(*futures)
            after = (
                server.registry["queued_requests"],
                server.registry["running_requests"],
            )
            return results, mid_burst, after

        results, mid_burst, after = asyncio.run(run())
        statuses = sorted(status for status, _, _ in results)
        assert statuses == [200, 200, 200, 200, 429]
        assert server.metrics["rejected_saturated"] == 1
        # The gauges a concurrent /metrics scrape would have read mid-burst:
        # two running, two queued -- never over capacity, never stale zeros.
        assert mid_burst == (2, 2)
        assert after == (0, 0)

    def test_gauges_return_to_zero_after_deadline_cancellation(self):
        server = EvaluationServer(batch_window_ms=1.0, max_inflight=1, max_queue=1)

        async def run():
            release = asyncio.Event()

            async def slow():
                await release.wait()
                return {}

            first = asyncio.ensure_future(server._admit(slow(), None))
            await asyncio.sleep(0)
            # Queued behind the running request, with a deadline that fires
            # while it is still waiting for a slot.
            timed_out = await server._admit(slow(), timeout_ms=10.0)
            release.set()
            await first
            return timed_out

        timed_out = asyncio.run(run())
        assert timed_out[0] == 504
        assert server.registry["queued_requests"] == 0
        assert server.registry["running_requests"] == 0
