"""Tests for the service wire protocol: parsing, validation and identity."""

from __future__ import annotations

import pytest

from repro.core.fault_model import FaultModel
from repro.experiments.scenarios import get_scenario
from repro.service.protocol import (
    parse_batch_payload,
    parse_evaluate_payload,
    parse_timeout_ms,
)
from repro.stats.rng import DEFAULT_SEED


def _payload(model: FaultModel, **extra) -> dict:
    return {"model": model.to_dict(), "method": "moments", **extra}


class TestParseEvaluate:
    def test_options_resolve_with_defaults(self, small_model):
        request = parse_evaluate_payload(_payload(small_model))
        assert request.method == "moments"
        assert request.options == {"versions": 2}
        assert request.seed == DEFAULT_SEED
        assert request.p_scale == 1.0 and request.q_scale == 1.0
        assert not request.requires_seed

    def test_scenario_and_inline_model_are_the_same_request(self):
        model = get_scenario("high-quality")
        by_scenario = parse_evaluate_payload({"scenario": "high-quality", "method": "moments"})
        by_model = parse_evaluate_payload({"model": model.to_dict(), "method": "moments"})
        assert by_scenario.digest() == by_model.digest()
        assert by_scenario.group_key() == by_model.group_key()

    def test_transforms_change_digest_but_not_group_key(self, small_model):
        base = parse_evaluate_payload(_payload(small_model))
        scaled = parse_evaluate_payload(_payload(small_model, p_scale=0.5))
        assert base.digest() != scaled.digest()
        assert base.group_key() == scaled.group_key()

    def test_method_options_and_seed_split_groups(self, small_model):
        one = parse_evaluate_payload(_payload(small_model, method="montecarlo", seed=1))
        other_seed = parse_evaluate_payload(_payload(small_model, method="montecarlo", seed=2))
        other_options = parse_evaluate_payload(
            _payload(small_model, method="montecarlo", seed=1, options={"replications": 500})
        )
        assert len({one.group_key(), other_seed.group_key(), other_options.group_key()}) == 3

    def test_seed_is_irrelevant_to_deterministic_identity(self, small_model):
        one = parse_evaluate_payload(_payload(small_model, seed=1))
        two = parse_evaluate_payload(_payload(small_model, seed=2))
        assert one.digest() == two.digest()
        assert one.entropy is None

    def test_stochastic_entropy_is_a_list(self, small_model):
        request = parse_evaluate_payload(_payload(small_model, method="montecarlo", seed=9))
        assert request.entropy == [9]
        assert request.requires_seed and request.supports_batch

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"scenario": "high-quality"}, "exactly one of 'model' and 'scenario'"),
            ({"method": "frobnicate"}, "unknown method"),
            ({"method": None}, "'method' name"),
            ({"options": {"bogus": 1}}, "does not accept option"),
            ({"options": {"versions": "two"}}, "expects int"),
            ({"options": [1, 2]}, "'options' must be a JSON object"),
            ({"seed": -1}, "non-negative"),
            ({"seed": True}, "'seed' must be a non-negative integer"),
            ({"seed": 1.5}, "'seed' must be a non-negative integer"),
            ({"p_scale": -0.5}, "'p_scale'"),
            ({"p_scale": float("nan")}, "'p_scale'"),
            ({"q_scale": "big"}, "'q_scale'"),
            ({"frobs": 1}, "unknown request key"),
        ],
    )
    def test_invalid_inputs_rejected(self, small_model, mutation, fragment):
        payload = _payload(small_model)
        payload.update(mutation)
        with pytest.raises(ValueError) as excinfo:
            parse_evaluate_payload(payload)
        assert fragment in str(excinfo.value)

    def test_model_dependent_transform_constraints(self, two_fault_model):
        # p_scale=4 would push p=0.5 to 2.0.
        with pytest.raises(ValueError):
            parse_evaluate_payload(_payload(two_fault_model, p_scale=4.0))

    def test_missing_and_invalid_model(self):
        with pytest.raises(ValueError, match="exactly one of 'model' and 'scenario'"):
            parse_evaluate_payload({"method": "moments"})
        with pytest.raises(ValueError, match="missing required key"):
            parse_evaluate_payload({"model": {"p": [0.1]}, "method": "moments"})
        with pytest.raises(ValueError, match="invalid model"):
            parse_evaluate_payload({"model": {"p": [2.0], "q": [0.1]}, "method": "moments"})
        with pytest.raises(ValueError, match="unknown scenario"):
            parse_evaluate_payload({"scenario": "nope", "method": "moments"})

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            parse_evaluate_payload([1, 2, 3])


class TestStudyKeySharing:
    """Service digests deliberately share the study cache key space."""

    def test_deterministic_request_matches_study_point_digest(self, small_model):
        from repro.studies.runner import plan_study
        from repro.studies.spec import StudySpec

        spec = StudySpec.from_dict(
            {
                "name": "key-sharing",
                "base": {"model": small_model.to_dict()},
                "sweep": {"grid": [{"name": "p_scale", "values": [0.5, 1.0]}]},
                "methods": [{"name": "moments"}],
                "seed": 123,
            }
        )
        study_digests = {entry.digest for entry in plan_study(spec)}
        for p_scale in (0.5, 1.0):
            request = parse_evaluate_payload(
                _payload(small_model, p_scale=p_scale, seed=999)  # seed irrelevant
            )
            assert request.digest() in study_digests

    def test_stochastic_request_never_matches_study_digest(self, small_model):
        from repro.studies.runner import plan_study
        from repro.studies.spec import StudySpec

        spec = StudySpec.from_dict(
            {
                "name": "key-sharing-mc",
                "base": {"model": small_model.to_dict()},
                "methods": [{"name": "montecarlo", "replications": 1000}],
                "seed": 7,
            }
        )
        study_digests = {entry.digest for entry in plan_study(spec)}
        # The study derives digest-keyed streams from its seed; the service
        # seeds directly.  Equal-looking requests must not share records.
        request = parse_evaluate_payload(
            _payload(small_model, method="montecarlo", options={"replications": 1000}, seed=7)
        )
        assert request.digest() not in study_digests


class TestResultRecord:
    def test_rebuilds_the_wire_record_around_cached_metrics(self, small_model):
        request = parse_evaluate_payload(_payload(small_model, method="montecarlo", seed=3))
        record = request.result_record({"mc_mean_system": 1e-6})
        assert record == {
            "method": "montecarlo",
            "options": request.options,
            "metrics": {"mc_mean_system": 1e-6},
            "seed_entropy": [3],
            "elapsed_seconds": 0.0,
        }


class TestParseBatch:
    def test_request_spellings(self, small_model):
        model_data, requests, seed, stream_indices = parse_batch_payload(
            {
                "model": small_model.to_dict(),
                "requests": ["moments", {"method": "exact", "max_support": 512}],
                "seed": 11,
            }
        )
        assert model_data == small_model.to_dict()
        assert requests[0] == ("moments", {})
        assert requests[1] == ("exact", {"max_support": 512})
        assert seed == 11
        assert stream_indices is None

    def test_stream_indices_round_trip(self, small_model):
        *_, stream_indices = parse_batch_payload(
            {
                "model": small_model.to_dict(),
                "requests": ["montecarlo", "montecarlo"],
                "stream_indices": [4, 7],
            }
        )
        assert stream_indices == [4, 7]

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"requests": []}, "non-empty list"),
            ({"requests": "moments"}, "non-empty list"),
            ({"requests": [{"no_method": 1}]}, "request 0"),
            ({"requests": ["moments", {"method": "exact", "bogus": 1}]}, "request 1"),
            ({"jobs": 4}, "unknown batch request key"),
            ({"stream_indices": [0, 1]}, "must match 'requests'"),
            ({"stream_indices": [-1]}, "non-negative"),
            ({"stream_indices": "01"}, "must be a list"),
        ],
    )
    def test_invalid_batches_rejected(self, small_model, mutation, fragment):
        payload = {"model": small_model.to_dict(), "requests": ["moments"]}
        payload.update(mutation)
        with pytest.raises(ValueError) as excinfo:
            parse_batch_payload(payload)
        assert fragment in str(excinfo.value)


class TestTimeoutMs:
    """``timeout_ms`` is delivery metadata: parsed, validated, never content."""

    def test_timeout_never_enters_the_request_identity(self, small_model):
        plain = parse_evaluate_payload(_payload(small_model))
        deadlined = parse_evaluate_payload(_payload(small_model, timeout_ms=250))
        assert deadlined.timeout_ms == 250.0
        assert plain.timeout_ms is None
        assert deadlined.digest() == plain.digest()
        assert deadlined.group_key() == plain.group_key()
        assert "timeout_ms" not in str(deadlined.payload())

    def test_parse_timeout_ms_spellings(self):
        assert parse_timeout_ms(None) is None
        assert parse_timeout_ms(250) == 250.0
        assert parse_timeout_ms(0.5) == 0.5
        for bad in (0, -1, True, "fast", float("inf"), float("nan")):
            with pytest.raises(ValueError, match="timeout_ms"):
                parse_timeout_ms(bad)

    def test_batch_payload_validates_the_deadline(self, small_model):
        payload = {"model": small_model.to_dict(), "requests": ["moments"]}
        parse_batch_payload({**payload, "timeout_ms": 100})  # accepted
        with pytest.raises(ValueError, match="timeout_ms"):
            parse_batch_payload({**payload, "timeout_ms": -3})
