"""/metrics exposition contract: JSON schema stability, Prometheus, trace ids.

The JSON document is a *superset* contract: every counter the previous
release exposed must stay present under the same name, and histograms are
additive-only fields.  Dashboards built against an older server keep
working against a newer one.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.service import EvaluationServer, ServiceClient, ServiceError, start_in_background
from repro.telemetry import histogram_quantile, parse_prometheus

#: Every counter exposed by the previous release's /metrics document.
#: Removing or renaming any of these is a breaking change.
LEGACY_COUNTERS = (
    "requests_total",
    "errors_total",
    "evaluate_requests",
    "batch_endpoint_requests",
    "batch_endpoint_evaluations",
    "evaluations_computed",
    "dispatched_groups",
    "batched_groups",
    "batched_group_requests",
    "coalesced_requests",
    "cache_hits_lru",
    "cache_hits_disk",
    "cache_misses",
    "group_fallbacks",
    "pool_restarts",
    "retried_jobs",
    "poison_jobs",
    "rejected_saturated",
    "rejected_draining",
    "deadline_timeouts",
)

LEGACY_GAUGES = (
    "max_group_size",
    "uptime_seconds",
    "batch_enabled",
    "batch_window_ms",
    "workers",
    "pending_requests",
    "draining",
    "lru_entries",
)

HISTOGRAMS = ("request_seconds", "queue_wait_seconds", "batch_window_wait_seconds")


@pytest.fixture(scope="module")
def live_server():
    server = EvaluationServer(batch_window_ms=20.0)
    with start_in_background(server) as handle:
        yield handle


@pytest.fixture(scope="module")
def live_client(live_server):
    client = ServiceClient(port=live_server.port)
    # One real evaluation so latency histograms have observations.
    client.evaluate(
        {"p": [0.05, 0.02], "q": [1e-4, 5e-4]}, "montecarlo", seed=3,
        options={"replications": 1000},
    )
    return client


def _raw_get(client: ServiceClient, target: str):
    connection = http.client.HTTPConnection(client.host, client.port, timeout=30)
    try:
        connection.request("GET", target)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestJsonSchema:
    def test_every_legacy_counter_and_gauge_is_still_present(self, live_client):
        metrics = live_client.metrics()
        missing = [key for key in LEGACY_COUNTERS + LEGACY_GAUGES if key not in metrics]
        assert not missing, f"breaking /metrics change, lost: {missing}"

    def test_histograms_are_an_additive_field(self, live_client):
        metrics = live_client.metrics()
        assert set(metrics["histograms"]) >= set(HISTOGRAMS)
        request_seconds = metrics["histograms"]["request_seconds"]
        assert set(request_seconds) >= {"buckets", "counts", "count", "sum", "p50", "p95", "p99"}
        assert request_seconds["count"] >= 1
        assert len(request_seconds["counts"]) == len(request_seconds["buckets"]) + 1

    def test_queue_gauges_come_from_one_consistent_pass(self, live_client):
        metrics = live_client.metrics()
        for gauge in ("pending_requests", "running_requests", "queued_requests"):
            assert gauge in metrics
            assert metrics[gauge] >= 0
        # Nothing in flight between requests: a torn multi-read would let
        # these disagree transiently even on an idle server.
        assert metrics["running_requests"] <= metrics["pending_requests"] + metrics["queued_requests"] + 1

    def test_unknown_format_is_a_400(self, live_client):
        status, _, body = _raw_get(live_client, "/metrics?format=xml")
        assert status == 400
        assert b"format" in body


class TestPrometheusExposition:
    def test_text_scrape_round_trips_against_the_json_document(self, live_client):
        json_metrics = live_client.metrics()
        status, headers, body = _raw_get(live_client, "/metrics?format=prom")
        assert status == 200
        assert headers.get("Content-Type", "").startswith("text/plain")
        parsed = parse_prometheus(body.decode())
        for key in LEGACY_COUNTERS:
            assert key in parsed["counters"], key
        for name in HISTOGRAMS:
            assert name in parsed["histograms"], name
        # Counters only move forward between the two scrapes (each scrape
        # itself increments requests_total), never backward.
        for key in LEGACY_COUNTERS:
            assert parsed["counters"][key] >= json_metrics[key], key

    def test_p99_latency_is_derivable_from_the_scrape(self, live_client):
        _, _, body = _raw_get(live_client, "/metrics?format=prom")
        parsed = parse_prometheus(body.decode())
        p99 = histogram_quantile(parsed["histograms"]["request_seconds"], 0.99)
        assert p99 is not None and p99 > 0.0


class TestTraceIds:
    def test_every_response_carries_a_trace_id_header(self, live_client):
        _, headers, _ = _raw_get(live_client, "/healthz")
        trace_id = headers.get("x-repro-trace-id")
        assert trace_id and len(trace_id) == 16
        int(trace_id, 16)

    def test_an_incoming_trace_id_is_honoured(self, live_client):
        connection = http.client.HTTPConnection(live_client.host, live_client.port, timeout=30)
        try:
            connection.request("GET", "/healthz", headers={"x-repro-trace-id": "cafecafecafecafe"})
            response = connection.getresponse()
            response.read()
            assert response.getheader("x-repro-trace-id") == "cafecafecafecafe"
        finally:
            connection.close()

    def test_service_error_carries_the_server_trace_id(self, live_client, small_model):
        with pytest.raises(ServiceError) as excinfo:
            live_client.evaluate(small_model, "frobnicate")
        error = excinfo.value
        assert error.status == 400
        assert error.trace_id and len(error.trace_id) == 16
        assert f"(trace {error.trace_id})" in str(error)

    def test_error_bodies_embed_the_trace_id(self, live_client):
        connection = http.client.HTTPConnection(live_client.host, live_client.port, timeout=30)
        try:
            connection.request("GET", "/nowhere")
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 404
            assert payload["trace_id"] == response.getheader("x-repro-trace-id")
        finally:
            connection.close()
