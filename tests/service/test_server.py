"""End-to-end service tests: HTTP wire, byte-identity, caching, metrics.

The byte-identity pins are the contract the whole subsystem hangs on:
whatever the transport, batching mode or cache state, a response's metrics
are exactly what :func:`repro.evaluate` / :func:`repro.evaluate_sweep`
return for the same ``(model, method, options, seed)``.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.api import evaluate, evaluate_batch, evaluate_sweep
from repro.core.fault_model import FaultModel
from repro.service import EvaluationServer, ServiceClient, ServiceError, start_in_background


def _gather_evaluate(server: EvaluationServer, payloads: list[dict]) -> list[dict]:
    """Drive the endpoint logic directly (deterministic concurrency)."""

    async def run():
        return await asyncio.gather(
            *(server._serve_evaluate(payload) for payload in payloads)
        )

    return asyncio.run(run())


def _strip_elapsed(record: dict) -> dict:
    return {key: value for key, value in record.items() if key != "elapsed_seconds"}


class TestByteIdentity:
    def test_single_request_equals_direct_evaluate(self, small_model):
        server = EvaluationServer(batch_window_ms=1.0)
        [response] = _gather_evaluate(
            server, [{"model": small_model.to_dict(), "method": "moments"}]
        )
        assert _strip_elapsed(response["result"]) == _strip_elapsed(
            evaluate(small_model, "moments").to_dict()
        )

    def test_transformed_request_equals_rescaled_evaluate(self, small_model):
        server = EvaluationServer(batch_window_ms=1.0)
        [response] = _gather_evaluate(
            server,
            [
                {
                    "model": small_model.to_dict(),
                    "method": "montecarlo",
                    "options": {"replications": 1000},
                    "seed": 11,
                    "p_scale": 0.5,
                }
            ],
        )
        direct = evaluate(
            small_model.rescaled(0.5, 1.0), "montecarlo", seed=11, replications=1000
        )
        assert _strip_elapsed(response["result"]) == _strip_elapsed(direct.to_dict())

    def test_concurrent_group_equals_evaluate_sweep(self, small_model):
        scales = (0.25, 0.5, 0.75, 1.0)
        server = EvaluationServer(batch_window_ms=50.0)
        responses = _gather_evaluate(
            server,
            [
                {
                    "model": small_model.to_dict(),
                    "method": "montecarlo",
                    "options": {"replications": 2000},
                    "seed": 7,
                    "p_scale": scale,
                }
                for scale in scales
            ],
        )
        reference = evaluate_sweep(
            small_model,
            "montecarlo",
            [{"p_scale": scale} for scale in scales],
            seed=7,
            replications=2000,
        )
        for response, expected in zip(responses, reference):
            assert response["served"]["batched"] is True
            assert response["served"]["group_size"] == len(scales)
            assert _strip_elapsed(response["result"]) == _strip_elapsed(expected.to_dict())
        assert server.metrics["batched_groups"] == 1
        assert server.metrics["batched_group_requests"] == len(scales)

    def test_no_batch_mode_equals_direct_evaluate_everywhere(self, small_model):
        scales = (0.25, 0.5, 0.75)
        server = EvaluationServer(batch_window_ms=50.0, batch=False)
        responses = _gather_evaluate(
            server,
            [
                {
                    "model": small_model.to_dict(),
                    "method": "montecarlo",
                    "options": {"replications": 1000},
                    "seed": 5,
                    "p_scale": scale,
                }
                for scale in scales
            ],
        )
        for response, scale in zip(responses, scales):
            direct = evaluate(
                small_model.rescaled(scale, 1.0), "montecarlo", seed=5, replications=1000
            )
            assert response["served"]["batched"] is False
            assert _strip_elapsed(response["result"]) == _strip_elapsed(direct.to_dict())
        assert server.metrics["batched_groups"] == 0

    def test_unbatchable_sweep_falls_back_to_scalar_values(self, small_model):
        # correlation != 0 makes the montecarlo kernel decline the sweep;
        # every member must then match the direct scalar evaluation.
        scales = (0.5, 1.0)
        server = EvaluationServer(batch_window_ms=50.0)
        responses = _gather_evaluate(
            server,
            [
                {
                    "model": small_model.to_dict(),
                    "method": "montecarlo",
                    "options": {"replications": 500, "correlation": 0.3},
                    "seed": 3,
                    "p_scale": scale,
                }
                for scale in scales
            ],
        )
        for response, scale in zip(responses, scales):
            direct = evaluate(
                small_model.rescaled(scale, 1.0),
                "montecarlo",
                seed=3,
                replications=500,
                correlation=0.3,
            )
            assert response["served"]["batched"] is False
            assert _strip_elapsed(response["result"]) == _strip_elapsed(direct.to_dict())


class TestCaching:
    def test_lru_serves_warm_traffic(self, small_model):
        server = EvaluationServer(batch_window_ms=1.0)
        payload = {
            "model": small_model.to_dict(),
            "method": "montecarlo",
            "options": {"replications": 500},
            "seed": 2,
        }
        [cold] = _gather_evaluate(server, [payload])
        [warm] = _gather_evaluate(server, [payload])
        assert cold["served"]["cached"] is None
        assert warm["served"]["cached"] == "lru"
        assert warm["result"]["metrics"] == cold["result"]["metrics"]
        assert server.metrics["cache_hits_lru"] == 1
        assert server.metrics["evaluations_computed"] == 1

    def test_disk_tier_survives_a_restart(self, small_model, tmp_path):
        payload = {
            "model": small_model.to_dict(),
            "method": "montecarlo",
            "options": {"replications": 500},
            "seed": 2,
        }
        first = EvaluationServer(batch_window_ms=1.0, cache_dir=str(tmp_path / "cache"))
        [cold] = _gather_evaluate(first, [payload])
        second = EvaluationServer(batch_window_ms=1.0, cache_dir=str(tmp_path / "cache"))
        [warm] = _gather_evaluate(second, [payload])
        assert warm["served"]["cached"] == "disk"
        assert warm["result"]["metrics"] == cold["result"]["metrics"]
        assert warm["result"]["seed_entropy"] == cold["result"]["seed_entropy"]
        assert second.metrics["evaluations_computed"] == 0

    def test_study_warmed_cache_serves_deterministic_requests(self, small_model, tmp_path):
        from repro.studies.runner import run_study
        from repro.studies.spec import StudySpec

        spec = StudySpec.from_dict(
            {
                "name": "warming",
                "base": {"model": small_model.to_dict()},
                "sweep": {"grid": [{"name": "p_scale", "values": [0.5, 1.0]}]},
                "methods": [{"name": "exact", "max_support": 512}],
                "seed": 99,
            }
        )
        result = run_study(spec, cache_dir=str(tmp_path / "cache"))
        server = EvaluationServer(batch_window_ms=1.0, cache_dir=str(tmp_path / "cache"))
        [response] = _gather_evaluate(
            server,
            [
                {
                    "model": small_model.to_dict(),
                    "method": "exact",
                    "options": {"max_support": 512},
                    "p_scale": 0.5,
                }
            ],
        )
        assert response["served"]["cached"] == "disk"
        assert server.metrics["evaluations_computed"] == 0
        row = next(r for r in result.records if r["p_scale"] == 0.5)
        assert response["result"]["metrics"]["exact_mean"] == row["exact_mean"]


@pytest.fixture(scope="module")
def live_server():
    server = EvaluationServer(batch_window_ms=40.0)
    with start_in_background(server) as handle:
        yield handle


@pytest.fixture(scope="module")
def live_client(live_server):
    return ServiceClient(port=live_server.port)


class TestHttpTransport:
    def test_health_and_methods(self, live_client):
        assert live_client.health()["status"] == "ok"
        from repro.api import default_registry

        schemas = {entry["name"]: entry for entry in live_client.methods()}
        assert set(schemas) == set(default_registry().names())
        assert schemas["montecarlo"]["requires_seed"] is True

    def test_wire_result_equals_direct_evaluate(self, live_client, small_model):
        result, served = live_client.evaluate_detail(
            small_model, "exact", options={"max_support": 512}
        )
        direct = evaluate(small_model, "exact", max_support=512)
        assert result.metric_dict() == direct.to_dict()["metrics"]
        assert result.option_dict() == direct.option_dict()
        assert served["cached"] is None

    def test_concurrent_clients_get_batched(self, live_client, small_model):
        scales = [0.2, 0.4, 0.6, 0.8]
        outcomes: list = [None] * len(scales)

        def fire(index: int, scale: float) -> None:
            outcomes[index] = live_client.evaluate_detail(
                small_model,
                "montecarlo",
                options={"replications": 2000},
                seed=17,
                p_scale=scale,
            )

        threads = [
            threading.Thread(target=fire, args=(index, scale))
            for index, scale in enumerate(scales)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reference = evaluate_sweep(
            small_model,
            "montecarlo",
            [{"p_scale": scale} for scale in scales],
            seed=17,
            replications=2000,
        )
        served_all = [served for _, served in outcomes]
        assert any(served["batched"] for served in served_all)
        if all(served["group_size"] == len(scales) for served in served_all):
            # The usual case: one window caught all four requests; then the
            # wire values are exactly the shared-stream sweep's.
            for (result, _), expected in zip(outcomes, reference):
                assert result.metric_dict() == expected.to_dict()["metrics"]

    def test_batch_endpoint_equals_evaluate_batch(self, live_client, small_model):
        requests = ["moments", ("montecarlo", {"replications": 500}), "moments"]
        remote = live_client.evaluate_batch(small_model, requests, seed=13)
        direct = evaluate_batch(small_model, requests, seed=13)
        assert [r.to_dict()["metrics"] for r in remote] == [
            d.to_dict()["metrics"] for d in direct
        ]
        assert [r.seed_entropy for r in remote] == [d.seed_entropy for d in direct]

    def test_http_error_statuses(self, live_server, live_client, small_model):
        with pytest.raises(ServiceError) as excinfo:
            live_client.evaluate(small_model, "frobnicate")
        assert excinfo.value.status == 400
        assert "unknown method" in excinfo.value.message

        with pytest.raises(ServiceError) as excinfo:
            live_client._request("GET", "/nowhere")
        assert excinfo.value.status == 404

        with pytest.raises(ServiceError) as excinfo:
            live_client._request("GET", "/v1/evaluate")
        assert excinfo.value.status == 405

        import http.client

        connection = http.client.HTTPConnection(
            live_client.host, live_client.port, timeout=30
        )
        try:
            connection.request(
                "POST",
                "/v1/evaluate",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_negative_content_length_is_400_not_a_dropped_connection(self, live_client):
        import socket

        with socket.create_connection(
            (live_client.host, live_client.port), timeout=30
        ) as raw:
            raw.sendall(
                b"POST /v1/evaluate HTTP/1.1\r\n"
                b"Content-Length: -5\r\n"
                b"Connection: close\r\n\r\n"
            )
            response = raw.recv(65536)
        assert response.startswith(b"HTTP/1.1 400"), response[:80]
        assert b"Content-Length" in response

    def test_metrics_snapshot(self, live_client):
        metrics = live_client.metrics()
        for key in (
            "requests_total",
            "batched_groups",
            "cache_hits_lru",
            "evaluations_computed",
            "batch_window_ms",
            "uptime_seconds",
        ):
            assert key in metrics
        assert metrics["requests_total"] > 0
        assert metrics["batch_enabled"] is True

    def test_client_rejects_bad_model_spelling(self, live_client):
        with pytest.raises(ValueError, match="exactly one of"):
            live_client.evaluate(None, "moments")
        with pytest.raises(ValueError, match="exactly one of"):
            live_client.evaluate({"p": [0.1], "q": [0.1]}, "moments", scenario="high-quality")


class TestProcessPool:
    def test_process_workers_serve_identical_results(self, small_model):
        server = EvaluationServer(workers=2, batch_window_ms=30.0)
        try:
            scales = (0.5, 1.0)
            responses = _gather_evaluate(
                server,
                [
                    {
                        "model": small_model.to_dict(),
                        "method": "exact",
                        "options": {"max_support": 256},
                        "p_scale": scale,
                    }
                    for scale in scales
                ],
            )
            reference = evaluate_sweep(
                small_model,
                "exact",
                [{"p_scale": scale} for scale in scales],
                max_support=256,
            )
            for response, expected in zip(responses, reference):
                assert _strip_elapsed(response["result"]) == _strip_elapsed(
                    expected.to_dict()
                )
        finally:
            asyncio.run(server.aclose())


class TestScenarioSpelling:
    def test_scenario_requests_share_the_cache_with_inline_models(self):
        from repro.experiments.scenarios import get_scenario

        server = EvaluationServer(batch_window_ms=1.0)
        model = get_scenario("high-quality")
        [cold] = _gather_evaluate(server, [{"scenario": "high-quality", "method": "moments"}])
        [warm] = _gather_evaluate(server, [{"model": model.to_dict(), "method": "moments"}])
        assert cold["served"]["cached"] is None
        assert warm["served"]["cached"] == "lru"
