"""``repro top`` rendering: pure screens from fleet samples, CI exit codes."""

from __future__ import annotations

from repro.telemetry.top import render_dashboard, run_top


def _fleet_metrics():
    return {
        "requests_total": 120,
        "errors_total": 2,
        "healthy_shards": 2,
        "shards": 3,
        "cache_hits_lru": 30,
        "cache_misses": 10,
        "inflight_requests": 4,
        "queued_requests": 1,
        "spans_shipped": 55,
        "spans_dropped": 0,
        "histograms": {
            "request_seconds": {
                "count": 120,
                "p50": 0.010,
                "p95": 0.040,
                "p99": 0.090,
                "max": 0.200,
                "exemplar": {"trace": "deadbeef", "value": 0.2},
            }
        },
        "scope": "fleet",
        "target_count": 2,
        "targets": {
            "127.0.0.1:8001": {
                "role": "shard",
                "age_seconds": 0.4,
                "counters": {"requests_total": 80, "errors_total": 2},
                "gauges": {"process_rss_bytes": 50 * 1024 * 1024},
                "histograms": {"request_seconds": {"count": 80, "p99": 0.08}},
            },
            "self": {
                "role": "router",
                "age_seconds": 0.0,
                "counters": {"requests_total": 40, "errors_total": 0},
                "gauges": {},
                "histograms": {},
            },
        },
    }


def _slo_report(met=True):
    return {
        "objectives": [
            {
                "name": "availability",
                "window": {
                    "met": met,
                    "compliance": 0.9833,
                    "burn_rate": 16.7,
                    "budget_remaining": -15.7,
                },
            }
        ],
        "samples": 9,
    }


def _sample(at=100.0, metrics=None, slo=None):
    return {
        "at": at,
        "scope": "fleet",
        "target": "127.0.0.1:8100",
        "metrics": _fleet_metrics() if metrics is None else metrics,
        "slo": slo,
    }


class TestRenderDashboard:
    def test_single_sample_screen_carries_every_section(self):
        screen = render_dashboard(_sample(slo=_slo_report()))
        assert "repro top -- 127.0.0.1:8100 scope=fleet targets=2 healthy=2/3" in screen
        assert "requests 120 (errors 2)" in screen  # no previous: cumulative
        assert "latency p50 10.0ms  p95 40.0ms  p99 90.0ms" in screen
        assert "slowest trace deadbeef (200.0ms)" in screen
        assert "cache mix: lru 30 (75%)  miss 10 (25%)" in screen
        assert "spans 55 shipped/0 dropped" in screen
        assert "127.0.0.1:8001" in screen and "50.0MiB" in screen
        assert "availability" in screen and "[ok]" in screen

    def test_two_samples_render_throughput_rates(self):
        previous = _sample(at=100.0)
        current = _sample(at=110.0)
        current["metrics"] = dict(current["metrics"], requests_total=220, errors_total=7)
        screen = render_dashboard(current, previous)
        assert "throughput 10.0 req/s (errors 0.5/s)" in screen

    def test_breached_objective_is_marked(self):
        screen = render_dashboard(_sample(slo=_slo_report(met=False)))
        assert "[BREACH]" in screen
        assert "burn 16.7x" in screen

    def test_no_metrics_renders_a_stub_screen(self):
        screen = render_dashboard({"target": "127.0.0.1:9", "metrics": None})
        assert "no /metrics response" in screen

    def test_local_scope_sample_renders_without_fleet_sections(self):
        metrics = {
            "requests_total": 3,
            "errors_total": 0,
            "histograms": {},
        }
        screen = render_dashboard(_sample(metrics=metrics))
        assert "requests 3" in screen
        assert "target" not in screen.splitlines()[0] or "targets=" not in screen


class TestRunTop:
    def test_once_against_a_dead_endpoint_exits_nonzero(self):
        emitted: list[str] = []
        # Port 1 on localhost: nothing listens; fetch degrades to None fast.
        code = run_top("127.0.0.1", 1, once=True, out=emitted.append)
        assert code == 1
        assert "no /metrics response" in emitted[0]
