"""Trace summarizer: span tables, per-request breakdowns, report rendering."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.summarize import (
    build_trace_tree,
    format_summary,
    load_events,
    summarize_events,
    summarize_file,
    summarize_files,
)


def _event(name, trace, dur_ms, attrs=None, **overrides):
    event = {
        "ts": 1.0,
        "name": name,
        "trace": trace,
        "span": f"span-{name}-{dur_ms}",
        "parent": None,
        "dur_ms": dur_ms,
        "pid": 1,
        "attrs": attrs or {},
    }
    event.update(overrides)
    return event


def _request_events(trace, total, queue, window, kernel, cache, path="/v1/evaluate"):
    return [
        _event("server.queue_wait", trace, queue),
        _event("batcher.window_wait", trace, window),
        _event("worker.kernel", trace, kernel),
        _event("cache.write", trace, cache),
        _event("server.request", trace, total, attrs={"path": path, "status": 200}),
    ]


class TestSummarize:
    def test_span_table_has_exact_percentiles(self):
        events = [_event("kernel.montecarlo", f"t{i}", float(i + 1)) for i in range(100)]
        summary = summarize_events(events)
        stats = summary["spans"]["kernel.montecarlo"]
        assert stats["count"] == 100
        assert stats["mean_ms"] == pytest.approx(50.5)
        assert stats["p50_ms"] == pytest.approx(50.5)
        assert stats["p95_ms"] == pytest.approx(95.05)
        assert stats["p99_ms"] == pytest.approx(99.01)
        assert stats["max_ms"] == 100.0

    def test_request_breakdown_reports_waits_and_kernel_time(self):
        events = _request_events("aaa", 20.0, queue=2.0, window=5.0, kernel=10.0, cache=1.0)
        summary = summarize_events(events)
        [request] = summary["requests"]
        assert request["trace"] == "aaa"
        assert request["dur_ms"] == 20.0
        assert request["queue_wait_ms"] == 2.0
        assert request["window_wait_ms"] == 5.0
        assert request["kernel_ms"] == 10.0
        assert request["cache_ms"] == 1.0
        assert request["path"] == "/v1/evaluate"
        assert request["status"] == 200

    def test_requests_sort_slowest_first_and_ignore_rootless_traces(self):
        events = (
            _request_events("fast", 5.0, queue=0.0, window=1.0, kernel=3.0, cache=0.0)
            + _request_events("slow", 50.0, queue=4.0, window=9.0, kernel=30.0, cache=2.0)
            + [_event("study.point", "rootless", 8.0)]
        )
        summary = summarize_events(events)
        assert [request["trace"] for request in summary["requests"]] == ["slow", "fast"]
        assert summary["traces"] == 3
        assert summary["events"] == len(events)

    def test_component_spans_within_a_trace_accumulate(self):
        events = [
            _event("cache.read", "t", 1.0),
            _event("cache.write", "t", 2.0),
            _event("server.cache_probe", "t", 3.0),
            _event("server.request", "t", 10.0, attrs={"path": "/x", "status": 200}),
        ]
        [request] = summarize_events(events)["requests"]
        assert request["cache_ms"] == 6.0


class TestLoadEvents:
    def test_malformed_and_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = _event("server.request", "t", 4.0, attrs={"path": "/x", "status": 200})
        path.write_text(
            json.dumps(good) + "\n"
            + "{torn write\n"
            + "\n"
            + json.dumps({"no": "name"}) + "\n"
            + json.dumps(_event("worker.kernel", "t", 2.0)) + "\n"
        )
        events = load_events(path)
        assert [event["name"] for event in events] == ["server.request", "worker.kernel"]
        summary = summarize_file(path)
        assert summary["events"] == 2
        assert summary["requests"][0]["kernel_ms"] == 2.0


class TestFormatSummary:
    def test_report_lists_spans_and_slowest_requests(self):
        events = _request_events("abcd1234", 20.0, queue=2.0, window=5.0, kernel=10.0, cache=1.0)
        text = format_summary(summarize_events(events), top=5)
        assert "events: 5" in text
        assert "server.request" in text
        assert "worker.kernel" in text
        assert "slowest requests (top 1 of 1):" in text
        assert "window_wait_ms" in text
        assert "abcd1234" in text

    def test_top_limits_the_request_table(self):
        events = []
        for index in range(8):
            events += _request_events(f"trace{index}", float(index + 1), 0.0, 0.0, 0.0, 0.0)
        text = format_summary(summarize_events(events), top=3)
        assert "slowest requests (top 3 of 8):" in text
        # Only the three slowest traces appear.
        assert "trace7" in text and "trace5" in text
        assert "trace0" not in text

    def test_empty_capture_renders_without_tables(self):
        text = format_summary(summarize_events([]))
        assert "events: 0" in text


def _stitched_events(trace="fleet1"):
    """One routed request as three processes would capture it: the router's
    envelope, the shard's server.request parented under it, and the worker
    kernel parented under that."""
    return [
        _event(
            "router.request", trace, 30.0,
            attrs={"path": "/v1/evaluate", "status": 200},
            span="r1", parent=None, pid=10, ts=1.0,
        ),
        _event("server.request", trace, 20.0, span="s1", parent="r1", pid=20, ts=1.2),
        _event("worker.kernel", trace, 12.0, span="w1", parent="s1", pid=30, ts=1.4),
    ]


class TestStitchedTraces:
    def test_router_root_wins_and_per_hop_columns_appear(self):
        summary = summarize_events(_stitched_events())
        assert summary["stitched"] == 1
        [request] = summary["requests"]
        assert request["dur_ms"] == 30.0  # the router envelope is the wall clock
        assert request["router_ms"] == 30.0
        assert request["shard_ms"] == 20.0
        assert request["network_ms"] == 10.0
        assert request["kernel_ms"] == 12.0

    def test_unstitched_capture_has_zero_network_residual(self):
        events = [
            _event("server.request", "t", 9.0, attrs={"path": "/x", "status": 200}),
        ]
        [request] = summarize_events(events)["requests"]
        assert request["shard_ms"] == 9.0
        assert request["router_ms"] == 0.0
        assert request["network_ms"] == 0.0
        assert summarize_events(events)["stitched"] == 0

    def test_summarize_files_concatenates_captures(self, tmp_path):
        events = _stitched_events()
        router_file, collector_file = tmp_path / "r.jsonl", tmp_path / "c.jsonl"
        router_file.write_text(json.dumps(events[0]) + "\n")
        collector_file.write_text("".join(json.dumps(e) + "\n" for e in events[1:]))
        summary = summarize_files([router_file, collector_file])
        assert summary["stitched"] == 1
        assert summary["requests"][0]["network_ms"] == 10.0

    def test_stitched_report_gains_per_hop_columns(self):
        text = format_summary(summarize_events(_stitched_events()))
        assert "stitched: 1" in text
        assert "router_ms" in text and "network_ms" in text
        # An unstitched report keeps the PR-7 table exactly.
        local = format_summary(
            summarize_events(
                [_event("server.request", "t", 5.0, attrs={"path": "/x", "status": 200})]
            )
        )
        assert "router_ms" not in local


class TestBuildTraceTree:
    def test_parent_links_nest_across_pids(self):
        roots = build_trace_tree(_stitched_events(), "fleet1")
        [root] = roots
        assert root["name"] == "router.request"
        [server] = root["children"]
        assert server["name"] == "server.request"
        assert server["pid"] == 20
        [kernel] = server["children"]
        assert kernel["name"] == "worker.kernel"

    def test_missing_parent_degrades_to_a_forest(self):
        events = _stitched_events()
        orphaned = [event for event in events if event["span"] != "r1"]
        roots = build_trace_tree(orphaned, "fleet1")
        [root] = roots  # server.request becomes the root; kernel stays nested
        assert root["name"] == "server.request"
        assert root["children"][0]["name"] == "worker.kernel"

    def test_other_traces_are_excluded(self):
        events = _stitched_events() + _stitched_events(trace="other")
        roots = build_trace_tree(events, "fleet1")
        assert len(roots) == 1
