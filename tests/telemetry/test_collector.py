"""Span shipping: bounded queues, loss accounting, the collector's ring+file."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import tracing
from repro.telemetry.collector import (
    SpanShipper,
    TraceCollector,
    configure_shipping,
    split_endpoint,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.summarize import load_events


def _event(index: int) -> dict:
    return {"name": "x", "trace": f"t{index}", "span": f"s{index}", "dur_ms": 1.0}


def _shipper(transport, **kw):
    """A shipper whose drain thread stays asleep: tests drive flush() by hand
    (huge flush interval, batch threshold never reached by enqueueing)."""
    kw.setdefault("flush_interval", 3600.0)
    kw.setdefault("batch_size", 1024)
    kw.setdefault("registry", MetricsRegistry())
    return SpanShipper("127.0.0.1:1", transport=transport, **kw)


class TestSplitEndpoint:
    def test_host_port_with_and_without_scheme(self):
        assert split_endpoint("127.0.0.1:8100") == ("127.0.0.1", 8100)
        assert split_endpoint("http://box:9") == ("box", 9)

    def test_missing_port_raises(self):
        with pytest.raises(ValueError, match="host:port"):
            split_endpoint("127.0.0.1")


class TestSpanShipper:
    def test_loss_accounting_shipped_plus_dropped_equals_emitted(self):
        batches: list[list] = []
        shipper = _shipper(lambda batch: batches.append(batch) or True, capacity=6)
        try:
            for index in range(10):
                shipper(_event(index))  # 6 queued, 4 dropped at the door
            shipper.flush()
            registry = shipper._registry
            assert registry["spans_shipped"] == 6
            assert registry["spans_dropped"] == 4
            assert registry["spans_shipped"] + registry["spans_dropped"] == 10
            assert [event["span"] for batch in batches for event in batch] == [
                f"s{i}" for i in range(6)
            ]
        finally:
            shipper.close()

    def test_full_queue_drops_newest_never_blocks(self):
        shipper = _shipper(lambda batch: True, capacity=2)
        try:
            for index in range(5):
                shipper(_event(index))
            with shipper._lock:
                queued = [event["span"] for event in shipper._queue]
            assert queued == ["s0", "s1"]  # oldest kept, overflow counted
            assert shipper._registry["spans_dropped"] == 3
        finally:
            shipper.close()

    def test_transient_failure_is_retried_once_without_loss(self):
        calls = []

        def transport(batch):
            calls.append(len(batch))
            return len(calls) > 1  # torn socket: first attempt fails

        shipper = _shipper(transport, batch_size=2)
        try:
            for index in range(4):
                shipper(_event(index))
            shipper.flush()
            assert calls == [2, 2, 2]  # batch 1 failed+retried, batch 2 clean
            assert shipper._registry["spans_shipped"] == 4
            assert "spans_dropped" not in shipper._registry
        finally:
            shipper.close()

    def test_dead_collector_counts_dropped_and_keeps_draining(self):
        calls = []

        def explode(batch):
            calls.append(len(batch))
            raise OSError("collector down")

        shipper = _shipper(explode, batch_size=2)
        try:
            for index in range(4):
                shipper(_event(index))
            shipper.flush()  # must not raise
            assert calls == [2, 2, 2, 2]  # two batches, each tried twice
            assert shipper._registry["spans_dropped"] == 4
        finally:
            shipper.close()

    def test_close_flushes_and_is_idempotent(self):
        batches: list[list] = []
        shipper = _shipper(lambda batch: batches.append(batch) or True)
        shipper(_event(0))
        shipper.close()
        shipper.close()
        assert sum(len(batch) for batch in batches) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            SpanShipper("h:1", capacity=0)


class TestTraceCollector:
    def test_ingest_accepts_events_and_rejects_malformed_ones(self):
        collector = TraceCollector()
        accepted, rejected = collector.ingest(
            {"events": [_event(0), {"name": "no-span"}, "not-a-dict"]}
        )
        assert (accepted, rejected) == (1, 2)
        assert [event["span"] for event in collector.events()] == ["s0"]
        stats = collector.stats()
        assert stats["batches"] == 1
        assert stats["received"] == 1
        assert stats["rejected"] == 2

    def test_bare_list_payload_works_and_nonlist_raises(self):
        collector = TraceCollector()
        assert collector.ingest([_event(1)]) == (1, 0)
        with pytest.raises(ValueError, match="list"):
            collector.ingest({"events": "nope"})

    def test_ring_ages_out_oldest_events(self):
        collector = TraceCollector(capacity=3)
        collector.ingest([_event(i) for i in range(5)])
        assert [event["span"] for event in collector.events()] == ["s2", "s3", "s4"]

    def test_file_sink_feeds_trace_summarize(self, tmp_path):
        path = tmp_path / "collector.jsonl"
        collector = TraceCollector(path)
        collector.ingest([_event(0), _event(1)])
        collector.close()
        events = load_events(path)
        assert [event["span"] for event in events] == ["s0", "s1"]
        # The on-disk schema is plain JSONL, appendable across runs.
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(_event(2)) + "\n")
        assert len(load_events(path)) == 3


class TestConfigureShipping:
    @pytest.fixture(autouse=True)
    def _clean_tracing(self):
        tracing.disable()
        yield
        tracing.disable()

    def test_traced_spans_ship_through_the_sink(self, monkeypatch):
        batches: list[list] = []
        registry = MetricsRegistry()
        shipper = configure_shipping(
            "127.0.0.1:1",
            export_env=False,
            transport=lambda batch: batches.append(batch) or True,
            flush_interval=3600.0,
            batch_size=1024,
            registry=registry,
        )
        with tracing.span("unit.op", trace_id="t-ship"):
            pass
        shipper.flush()
        shipped = [event for batch in batches for event in batch]
        assert [event["name"] for event in shipped] == ["unit.op"]
        assert shipped[0]["trace"] == "t-ship"
        assert registry["spans_shipped"] == 1

    def test_export_env_arms_workers_and_clears_stale_file_var(self, monkeypatch):
        monkeypatch.setenv(tracing.ENV_VAR, "/stale/trace.jsonl")
        configure_shipping(
            "127.0.0.1:2",
            transport=lambda batch: True,
            registry=MetricsRegistry(),
        )
        import os

        assert os.environ["REPRO_TRACE_COLLECTOR"] == "127.0.0.1:2"
        assert tracing.ENV_VAR not in os.environ
        tracing.disable()
        assert "REPRO_TRACE_COLLECTOR" not in os.environ
