"""SLOs: burn-rate arithmetic, latency interpolation, windowing, gates, config."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.slo import (
    DEFAULT_OBJECTIVES,
    Objective,
    SLOEngine,
    evaluate_objectives,
    gate,
    load_objectives,
    parse_objectives,
)


def _availability(target=0.999, **kw):
    return Objective("avail", "availability", target, **kw)


def _latency(target=0.99, threshold_ms=500.0, **kw):
    return Objective("lat", "latency", target, threshold_ms=threshold_ms, **kw)


def _snapshot(requests=0, errors=0, buckets=(), counts=(), count=0):
    return {
        "counters": {"requests_total": requests, "errors_total": errors},
        "histograms": {
            "request_seconds": {
                "buckets": list(buckets),
                "counts": list(counts),
                "count": count,
                "sum": 0.0,
            }
        },
    }


class TestObjective:
    def test_validation(self):
        with pytest.raises(ValueError, match="availability|latency"):
            Objective("x", "throughput", 0.9)
        with pytest.raises(ValueError, match="target"):
            Objective("x", "availability", 1.0)
        with pytest.raises(ValueError, match="threshold_ms"):
            Objective("x", "latency", 0.99)
        with pytest.raises(ValueError, match="window_seconds"):
            Objective("x", "availability", 0.99, window_seconds=0.0)

    def test_budget_and_describe(self):
        objective = _latency(0.99, threshold_ms=250.0)
        assert objective.budget == pytest.approx(0.01)
        description = objective.describe()
        assert description["threshold_ms"] == 250.0
        assert description["window_seconds"] == 300.0


class TestBurnMath:
    def test_availability_burn_rate_is_bad_fraction_over_budget(self):
        # 1 error in 1000 against three nines: exactly on budget.
        [row] = evaluate_objectives([_availability(0.999)], _snapshot(1000, 1))
        assert row["burn_rate"] == 1.0
        assert row["met"] is True
        assert row["compliance"] == 0.999

        [row] = evaluate_objectives([_availability(0.999)], _snapshot(1000, 10))
        assert row["burn_rate"] == 10.0
        assert row["met"] is False

    def test_latency_overflow_bucket_counts_as_bad(self):
        # 20 at/under 500 ms, 5 in (0.5, 1], 5 beyond the last bound.
        snapshot = _snapshot(buckets=(0.25, 0.5, 1.0), counts=(10, 10, 5), count=30)
        [row] = evaluate_objectives([_latency(0.99, threshold_ms=500.0)], snapshot)
        assert row["bad"] == 10.0
        assert row["compliance"] == pytest.approx(2.0 / 3.0)
        assert row["burn_rate"] == pytest.approx((10.0 / 30.0) / 0.01)

    def test_latency_threshold_interpolates_inside_its_bucket(self):
        # threshold 750 ms sits halfway through the (0.5, 1.0] bucket:
        # credit half its 5 observations, same arithmetic as
        # histogram_quantile.
        snapshot = _snapshot(buckets=(0.25, 0.5, 1.0), counts=(10, 10, 5), count=25)
        [row] = evaluate_objectives([_latency(0.9, threshold_ms=750.0)], snapshot)
        assert row["bad"] == pytest.approx(2.5)

    def test_empty_snapshot_is_vacuously_met_with_zero_burn(self):
        rows = evaluate_objectives(DEFAULT_OBJECTIVES, _snapshot())
        for row in rows:
            assert row["met"] is True
            assert row["burn_rate"] == 0.0
            assert row["compliance"] is None

    def test_budget_consumed_scales_with_window_fraction(self):
        # Burning at exactly rate 1.0 for a tenth of the objective window
        # consumes a tenth of the budget.
        [row] = evaluate_objectives(
            [_availability(0.999, window_seconds=300.0)],
            _snapshot(1000, 1),
            window_seconds=30.0,
        )
        assert row["burn_rate"] == 1.0
        assert row["budget_consumed"] == pytest.approx(0.1)
        assert row["budget_remaining"] == pytest.approx(0.9)
        assert row["window_seconds"] == 30.0


class TestGate:
    def test_gate_passes_within_allowance_and_reports_violations(self):
        rows = evaluate_objectives(
            [_availability(0.999)], _snapshot(1000, 3)
        )  # burn 3.0
        assert gate(rows, max_burn_rate=5.0)["passed"] is True
        verdict = gate(rows, max_burn_rate=2.0)
        assert verdict["passed"] is False
        [violation] = verdict["violations"]
        assert violation["name"] == "avail"
        assert violation["burn_rate"] == 3.0


class TestParseObjectives:
    def test_list_and_wrapper_forms(self, tmp_path):
        data = [
            {"name": "a", "kind": "availability", "target": 0.99},
            {"kind": "latency", "target": 0.95, "threshold_ms": 100.0},
        ]
        objectives = parse_objectives({"objectives": data})
        assert [objective.name for objective in objectives] == ["a", "latency"]
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(data))
        assert len(load_objectives(path)) == 2

    def test_unknown_fields_and_empty_configs_rejected(self):
        with pytest.raises(ValueError, match="unknown objective fields"):
            parse_objectives([{"kind": "availability", "budget": 0.1}])
        with pytest.raises(ValueError, match="non-empty"):
            parse_objectives([])
        with pytest.raises(ValueError, match="objects"):
            parse_objectives(["availability"])


class TestSLOEngine:
    def test_windowed_rows_difference_cumulative_counters(self):
        clock = {"now": 0.0}
        engine = SLOEngine([_availability(0.999, window_seconds=100.0)], clock=lambda: clock["now"])
        engine.observe(_snapshot(1000, 0))
        clock["now"] = 50.0
        engine.observe(_snapshot(2000, 1))
        report = engine.report()
        [row] = report["objectives"]
        # Cumulative: 1 bad of 2000.  Windowed: the last 50 s saw 1000
        # requests and 1 error -- exactly on budget.
        assert row["cumulative"]["bad"] == 1.0
        assert row["cumulative"]["total"] == 2000.0
        assert row["window"]["total"] == 1000.0
        assert row["window"]["burn_rate"] == 1.0
        assert row["window"]["window_seconds"] == 50.0
        assert report["samples"] == 2

    def test_samples_outside_the_window_are_ignored(self):
        clock = {"now": 0.0}
        engine = SLOEngine([_availability(0.999, window_seconds=100.0)], clock=lambda: clock["now"])
        engine.observe(_snapshot(1000, 5))  # ancient burn
        clock["now"] = 500.0
        engine.observe(_snapshot(5000, 5))
        clock["now"] = 550.0
        engine.observe(_snapshot(6000, 5))
        [row] = engine.report()["objectives"]
        # The window baseline is the t=500 sample: no *new* errors since.
        assert row["window"]["bad"] == 0.0
        assert row["window"]["total"] == 1000.0

    def test_empty_engine_reports_no_data_shape(self):
        report = SLOEngine().report()
        assert report["samples"] == 0
        for row in report["objectives"]:
            assert row["cumulative"] is None
            assert row["window"] is None

    def test_no_objectives_falls_back_to_the_stock_set(self):
        assert SLOEngine(()).objectives == DEFAULT_OBJECTIVES
