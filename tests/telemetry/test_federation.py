"""Federation: partitioned-merge invariance, fleet documents, prom round-trips."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.federation import MetricsFederation
from repro.telemetry.metrics import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)

#: Observation values as dyadic rationals (n/1024): every value, partial sum
#: and merged sum is exactly representable, so the partitioned-merge
#: invariance below is *equality*, not approximation -- the same property
#: the fleet relies on (fixed bucket bounds + repr() floats on the wire).
_values = st.integers(min_value=0, max_value=4096).map(lambda n: n / 1024.0)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.sampled_from(["requests_total", "errors_total"]), st.integers(1, 5)),
        st.tuples(st.just("observe"), st.sampled_from(["request_seconds", "kernel_seconds"]), _values),
        st.tuples(st.just("max"), st.just("queue_high_water"), st.integers(0, 64)),
    ),
    max_size=60,
)


def _apply(registry: MetricsRegistry, operation) -> None:
    kind, name, value = operation
    if kind == "inc":
        registry.inc(name, value)
    elif kind == "observe":
        registry.observe(name, value)
    else:
        registry.set_max(name, value)


class TestPartitionedMergeInvariance:
    @settings(max_examples=50, deadline=None)
    @given(operations=_operations, partition=st.lists(st.integers(0, 2), max_size=60))
    def test_federated_rollup_equals_single_registry(self, operations, partition):
        """Scattering observations across shards and federating their scrapes
        (through the Prometheus text format, as the router does) yields the
        exact counters/histograms one combined registry would hold."""
        shards = [MetricsRegistry() for _ in range(3)]
        combined = MetricsRegistry()
        for index, operation in enumerate(operations):
            shard = shards[partition[index] if index < len(partition) else 0]
            _apply(shard, operation)
            _apply(combined, operation)

        federation = MetricsFederation()
        for index, shard in enumerate(shards):
            federation.update_from_prometheus(
                f"shard-{index}", render_prometheus(shard.snapshot())
            )
        fleet = federation.fleet_snapshot()
        expected = combined.snapshot()

        assert fleet.get("counters", {}) == expected["counters"]
        # set_max gauges merge by max: associative, so partitioning is free.
        assert fleet.get("gauges", {}) == expected["gauges"]
        for name, histogram in expected["histograms"].items():
            merged = fleet["histograms"][name]
            for key in ("buckets", "counts", "count", "sum"):
                assert merged[key] == histogram[key], (name, key)


class TestFleetDocument:
    def _federation(self):
        federation = MetricsFederation(clock=lambda: 1000.0)
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        shard_a.inc("requests_total", 5)
        shard_a.observe("request_seconds", 0.125)
        shard_b.inc("requests_total", 7)
        shard_b.inc("errors_total", 2)
        federation.update("127.0.0.1:1", shard_a.snapshot())
        federation.update("127.0.0.1:2", shard_b.snapshot())
        return federation

    def test_rollup_is_flat_and_superset_of_local_schema(self):
        federation = self._federation()
        local = MetricsRegistry()
        local.inc("requests_total", 3)
        document = federation.document(local.snapshot())
        # The local /metrics shape, unchanged: flat counters + histogram
        # summaries -- plus the additive fleet keys.
        assert document["requests_total"] == 15
        assert document["errors_total"] == 2
        assert document["scope"] == "fleet"
        assert document["target_count"] == 3
        assert set(document["targets"]) == {"127.0.0.1:1", "127.0.0.1:2", "self"}
        assert document["targets"]["self"]["role"] == "router"
        assert document["histograms"]["request_seconds"]["count"] == 1

    def test_rollup_equals_merge_of_target_entries(self):
        document = self._federation().document()
        for counter in ("requests_total", "errors_total"):
            summed = sum(
                entry["counters"].get(counter, 0)
                for entry in document["targets"].values()
            )
            assert document[counter] == summed

    def test_forget_drops_a_target(self):
        federation = self._federation()
        federation.forget("127.0.0.1:2")
        document = federation.document()
        assert set(document["targets"]) == {"127.0.0.1:1"}
        assert document["requests_total"] == 5


class TestFleetPrometheus:
    def test_fleet_prom_round_trips_like_a_local_scrape(self):
        federation = MetricsFederation(clock=lambda: 50.0)
        shard = MetricsRegistry()
        shard.inc("requests_total", 9)
        shard.observe("request_seconds", 0.25)
        federation.update("127.0.0.1:9", shard.snapshot())
        local = MetricsRegistry()
        local.inc("requests_total", 1)

        text = federation.prometheus(local.snapshot())
        parsed = parse_prometheus(text)
        assert parsed["counters"]["requests_total"] == 10
        assert parsed["histograms"]["request_seconds"]["count"] == 1
        # Per-target presence/staleness series are labelled, and the parser
        # files them under "labeled" instead of choking on them.
        labeled = parsed["labeled"]
        assert labeled['repro_fleet_target_up{target="127.0.0.1:9",role="shard"}'] == 1
        assert labeled['repro_fleet_target_up{target="self",role="router"}'] == 1
        assert 'repro_fleet_target_scrape_age_seconds{target="127.0.0.1:9"}' in labeled

    def test_exemplar_survives_federation(self):
        federation = MetricsFederation()
        slow, fast = MetricsRegistry(), MetricsRegistry()
        fast.observe("request_seconds", 0.01, trace_id="fast-trace")
        slow.observe("request_seconds", 0.9, trace_id="slow-trace")
        # Exemplars ride the JSON path (update), not the prom text.
        federation.update("fast", fast.snapshot())
        federation.update("slow", slow.snapshot())
        document = federation.document()
        exemplar = document["histograms"]["request_seconds"]["exemplar"]
        assert exemplar == {"trace": "slow-trace", "value": 0.9}
