"""Tracer: no-op discipline when disabled, span nesting, file/env plumbing."""

from __future__ import annotations

import json
import os

import pytest

from repro import telemetry
from repro.telemetry import tracing


@pytest.fixture(autouse=True)
def _tracing_disabled():
    """Every test starts and ends with tracing off and the env var clear."""
    tracing.disable()
    yield
    tracing.disable()


@pytest.fixture
def sink():
    events: list[dict] = []
    tracing.configure(sink=events.append)
    return events


class TestDisabledPath:
    def test_span_returns_the_shared_noop_singleton(self):
        first = telemetry.span("anything", key="value")
        second = telemetry.span("something.else")
        assert first is second is tracing._NOOP
        with first as active:
            active.set(more="attrs")  # must be accepted and ignored

    def test_record_is_a_noop(self):
        telemetry.record("interval", 0.5)  # must not raise

    def test_enabled_reports_state(self, sink):
        assert telemetry.enabled()
        tracing.disable()
        assert not telemetry.enabled()


class TestSpans:
    def test_nested_spans_share_a_trace_and_chain_parents(self, sink):
        with telemetry.span("outer") as outer:
            with telemetry.span("inner"):
                pass
        inner_event, outer_event = sink
        assert inner_event["name"] == "inner"
        assert outer_event["name"] == "outer"
        assert inner_event["trace"] == outer_event["trace"]
        assert inner_event["parent"] == outer_event["span"]
        assert outer_event["parent"] is None
        assert outer.trace == outer_event["trace"]

    def test_explicit_trace_id_wins_over_context(self, sink):
        with telemetry.span("outer"):
            with telemetry.span("job", trace_id="feedbeeffeedbeef"):
                pass
        job_event = sink[0]
        assert job_event["trace"] == "feedbeeffeedbeef"

    def test_attrs_and_mid_span_set_land_in_the_event(self, sink):
        with telemetry.span("work", stage="probe") as active:
            active.set(tier="lru", hit=True)
        [event] = sink
        assert event["attrs"] == {"stage": "probe", "tier": "lru", "hit": True}
        assert event["dur_ms"] >= 0.0
        assert event["pid"] == os.getpid()

    def test_exceptions_stamp_an_error_attr_and_propagate(self, sink):
        with pytest.raises(RuntimeError):
            with telemetry.span("doomed"):
                raise RuntimeError("boom")
        [event] = sink
        assert event["attrs"]["error"] == "RuntimeError"

    def test_record_inherits_the_enclosing_span_as_parent(self, sink):
        with telemetry.span("outer"):
            telemetry.record("measured.elsewhere", 0.125, detail=3)
        measured, outer = sink
        assert measured["parent"] == outer["span"]
        assert measured["trace"] == outer["trace"]
        assert measured["dur_ms"] == pytest.approx(125.0)
        assert measured["attrs"] == {"detail": 3}

    def test_set_trace_id_binds_the_context(self, sink):
        token = telemetry.set_trace_id("0123456789abcdef")
        try:
            assert telemetry.current_trace_id() == "0123456789abcdef"
            with telemetry.span("work"):
                pass
        finally:
            token.var.reset(token)
        assert sink[0]["trace"] == "0123456789abcdef"
        assert telemetry.current_trace_id() is None

    def test_trace_ids_are_sixteen_hex_chars(self):
        trace_id = telemetry.new_trace_id()
        assert len(trace_id) == 16
        int(trace_id, 16)  # raises if not hex

    def test_a_crashing_sink_never_breaks_the_traced_operation(self):
        def explode(event):
            raise OSError("disk full")

        tracing.configure(sink=explode)
        with telemetry.span("survives"):
            result = 2 + 2
        assert result == 4


class TestFilePlumbing:
    def test_file_mode_appends_jsonl_and_exports_the_env_var(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracing.configure(path)
        assert os.environ[tracing.ENV_VAR] == str(path)
        with telemetry.span("first"):
            pass
        telemetry.record("second", 0.001)
        tracing.disable()
        assert tracing.ENV_VAR not in os.environ
        lines = path.read_text().strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["name"] for event in events] == ["first", "second"]
        for event in events:
            assert set(event) == {"ts", "name", "trace", "span", "parent", "dur_ms", "pid", "attrs"}

    def test_load_env_arms_tracing_like_a_worker_import(self, tmp_path):
        path = tmp_path / "worker.jsonl"
        os.environ[tracing.ENV_VAR] = str(path)
        try:
            tracing._load_env()
            assert telemetry.enabled()
            with telemetry.span("worker.kernel"):
                pass
        finally:
            tracing.disable(export_env=False)
            os.environ.pop(tracing.ENV_VAR, None)
        assert json.loads(path.read_text().splitlines()[0])["name"] == "worker.kernel"

    def test_unwritable_env_path_degrades_to_no_tracing(self, tmp_path):
        os.environ[tracing.ENV_VAR] = str(tmp_path / "missing" / "dir" / "t.jsonl")
        try:
            tracing._load_env()
            assert not telemetry.enabled()
        finally:
            os.environ.pop(tracing.ENV_VAR, None)

    def test_configure_requires_exactly_one_destination(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            tracing.configure()
        with pytest.raises(ValueError, match="exactly one"):
            tracing.configure(tmp_path / "t.jsonl", sink=lambda event: None)
