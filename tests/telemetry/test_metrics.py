"""MetricsRegistry: instruments, consistent snapshots, merge algebra, Prometheus."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    histogram_summary,
    merge_snapshots,
    parse_prometheus,
    render_prometheus,
    subtract_snapshots,
)


class TestInstruments:
    def test_counters_and_gauges_read_back_by_subscript(self):
        registry = MetricsRegistry()
        registry.inc("requests", 3)
        registry.inc("requests")
        registry.set_gauge("depth", 7)
        registry.add_gauge("depth", -2)
        assert registry["requests"] == 4
        assert registry["depth"] == 5
        assert "requests" in registry
        with pytest.raises(KeyError):
            registry["nonexistent"]

    def test_set_max_is_a_high_water_mark(self):
        registry = MetricsRegistry()
        registry.set_max("group", 3)
        registry.set_max("group", 1)
        assert registry["group"] == 3
        registry.set_max("group", 9)
        assert registry["group"] == 9

    def test_registering_a_name_as_two_kinds_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("thing")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.histogram("thing")

    def test_register_counters_appear_at_zero_in_snapshots(self):
        registry = MetricsRegistry()
        registry.register_counters(["a", "b"])
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 0, "b": 0}

    def test_histogram_bounds_must_be_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", buckets=())


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            registry.observe("lat", value)
        data = registry.snapshot()["histograms"]["lat"]
        assert data["counts"] == [1, 1, 1, 1]  # last slot is the +Inf overflow
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(5.555)
        assert data["min"] == 0.005
        assert data["max"] == 5.0

    def test_quantiles_by_linear_interpolation(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            registry.observe("lat", 1.5)  # all in (1.0, 2.0]
        data = registry.snapshot()["histograms"]["lat"]
        assert histogram_quantile(data, 0.0) == pytest.approx(1.0)
        # Interpolated within the bucket, clamped by the observed max.
        assert 1.0 <= histogram_quantile(data, 0.5) <= 1.5
        assert histogram_quantile(data, 1.0) == pytest.approx(1.5)

    def test_quantile_of_empty_histogram_is_none(self):
        registry = MetricsRegistry()
        data = registry.histogram("lat").snapshot()
        assert histogram_quantile(data, 0.99) is None

    def test_overflow_bucket_reports_observed_max(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,))
        registry.observe("lat", 30.0)
        data = registry.snapshot()["histograms"]["lat"]
        assert histogram_quantile(data, 0.99) == 30.0

    def test_summary_attaches_percentiles(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.003)
        summary = histogram_summary(registry.snapshot()["histograms"]["lat"])
        assert set(summary) >= {"buckets", "counts", "count", "sum", "p50", "p95", "p99"}
        assert summary["count"] == 1


class TestSnapshotMerge:
    def test_snapshot_is_one_consistent_cut(self):
        registry = MetricsRegistry()
        registry.inc("seen", 5)
        registry.set_gauge("inflight", 2)
        registry.observe("lat", 0.02)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["seen"] == 5
        assert snapshot["gauges"]["inflight"] == 2
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_merge_adds_counters_and_histograms_and_maxes_gauges(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        for registry, latency in ((left, 0.004), (right, 0.4)):
            registry.inc("jobs", 2)
            registry.observe("lat", latency)
        left.set_gauge("peak", 3)
        right.set_gauge("peak", 5)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert merged["counters"]["jobs"] == 4
        assert merged["gauges"]["peak"] == 5
        data = merged["histograms"]["lat"]
        assert data["count"] == 2
        assert data["sum"] == pytest.approx(0.404)
        assert data["min"] == 0.004
        assert data["max"] == 0.4

    def test_merge_keeps_latest_for_non_numeric_gauges(self):
        registry = MetricsRegistry()
        registry.set_gauge("cache_dir", None)
        registry.merge({"gauges": {"cache_dir": "/tmp/cache"}})
        assert registry["cache_dir"] == "/tmp/cache"

    def test_merge_rejects_mismatched_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        delta = MetricsRegistry()
        delta.histogram("lat", buckets=(1.0, 3.0))
        delta.observe("lat", 0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            registry.merge(delta.snapshot())

    def test_subtract_yields_the_window_delta_and_drops_idle_metrics(self):
        registry = MetricsRegistry()
        registry.inc("jobs", 3)
        registry.inc("idle", 1)
        registry.observe("lat", 0.01)
        before = registry.snapshot()
        registry.inc("jobs", 2)
        registry.observe("lat", 0.02)
        registry.observe("lat", 0.03)
        delta = subtract_snapshots(registry.snapshot(), before)
        assert delta["counters"] == {"jobs": 2}  # "idle" unchanged -> dropped
        data = delta["histograms"]["lat"]
        assert data["count"] == 2
        assert data["sum"] == pytest.approx(0.05)
        # Window min/max are unknowable from two cumulative snapshots.
        assert data["min"] is None and data["max"] is None

    def test_snapshot_delta_round_trip_restores_totals(self):
        """The worker protocol: before + (after - before) == after."""
        worker = MetricsRegistry()
        worker.inc("kernel_calls", 4)
        worker.observe("kernel_seconds", 0.25)
        before = worker.snapshot()
        worker.inc("kernel_calls", 1)
        worker.observe("kernel_seconds", 0.5)
        after = worker.snapshot()
        delta = subtract_snapshots(after, before)
        rebuilt = merge_snapshots(before, delta)
        assert rebuilt["counters"] == after["counters"]
        assert rebuilt["histograms"]["kernel_seconds"]["counts"] == (
            after["histograms"]["kernel_seconds"]["counts"]
        )
        assert rebuilt["histograms"]["kernel_seconds"]["sum"] == pytest.approx(
            after["histograms"]["kernel_seconds"]["sum"]
        )


@settings(max_examples=50, deadline=None)
@given(
    observations=st.lists(
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False), max_size=60
    ),
    splits=st.lists(st.integers(min_value=0, max_value=60), max_size=4),
)
def test_property_partitioned_merge_equals_single_process_totals(observations, splits):
    """Observing a stream split across N registries then merging is exact.

    This is the ProcessPoolExecutor contract: each worker histograms its own
    share of the kernel timings; merging the shipped deltas must reproduce
    the histogram a single process would have built from the full stream.
    """
    boundaries = sorted(index for index in splits if index <= len(observations))
    chunks, start = [], 0
    for boundary in boundaries + [len(observations)]:
        chunks.append(observations[start:boundary])
        start = boundary

    single = MetricsRegistry()
    for value in observations:
        single.observe("lat", value)
        single.inc("seen")

    partitions = []
    for chunk in chunks:
        worker = MetricsRegistry()
        for value in chunk:
            worker.observe("lat", value)
            worker.inc("seen")
        partitions.append(worker.snapshot())

    merged = merge_snapshots(*partitions)
    expected = single.snapshot()
    if not observations:
        assert merged.get("histograms", {}).get("lat") is None or (
            merged["histograms"]["lat"]["count"] == 0
        )
        return
    assert merged["counters"]["seen"] == expected["counters"]["seen"]
    got, want = merged["histograms"]["lat"], expected["histograms"]["lat"]
    assert got["counts"] == want["counts"]
    assert got["count"] == want["count"]
    assert got["sum"] == pytest.approx(want["sum"])
    assert got["min"] == want["min"]
    assert got["max"] == want["max"]
    for quantile in (0.5, 0.95, 0.99):
        assert histogram_quantile(got, quantile) == pytest.approx(
            histogram_quantile(want, quantile)
        )


class TestPrometheus:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.inc("requests_total", 12)
        registry.set_gauge("inflight", 3)
        registry.set_gauge("uptime_seconds", 1.5)
        registry.set_gauge("draining", False)
        registry.set_gauge("cache_dir", "/tmp/somewhere")  # non-numeric: skipped
        registry.set_gauge("request_timeout_ms", None)  # non-numeric: skipped
        for value in (0.002, 0.03, 0.03, 2.0, 150.0):
            registry.observe("request_seconds", value)
        return registry

    def test_render_emits_typed_series_with_cumulative_buckets(self):
        text = render_prometheus(self._populated().snapshot())
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 12" in text
        assert "# TYPE repro_request_seconds histogram" in text
        assert 'repro_request_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_request_seconds_count 5" in text
        assert "repro_draining 0" in text
        assert "cache_dir" not in text
        assert "request_timeout_ms" not in text
        lines = text.splitlines()
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("repro_request_seconds_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts), "bucket series must be cumulative"

    def test_parse_round_trips_the_rendered_snapshot(self):
        snapshot = self._populated().snapshot()
        parsed = parse_prometheus(render_prometheus(snapshot))
        assert parsed["counters"] == snapshot["counters"]
        assert parsed["gauges"]["inflight"] == 3
        assert parsed["gauges"]["uptime_seconds"] == 1.5
        got, want = parsed["histograms"]["request_seconds"], snapshot["histograms"]["request_seconds"]
        assert got["counts"] == want["counts"]
        assert got["count"] == want["count"]
        assert got["sum"] == pytest.approx(want["sum"])
        assert got["buckets"] == list(DEFAULT_LATENCY_BUCKETS)

    def test_p99_is_derivable_from_a_scrape(self):
        registry = MetricsRegistry()
        for _ in range(99):
            registry.observe("request_seconds", 0.002)
        registry.observe("request_seconds", 3.0)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        p99 = histogram_quantile(parsed["histograms"]["request_seconds"], 0.99)
        assert p99 is not None and p99 > 0.001
