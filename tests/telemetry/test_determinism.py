"""The overhead contract: telemetry must never change a computed result.

With tracing armed and metrics recording, every evaluation must produce
byte-identical canonical JSON and the exact same content-addressed cache
digests as with telemetry fully disabled.  Instrumentation that consumed a
seeded RNG draw, reordered work, or leaked into a payload would show up
here as a digest mismatch.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.api import evaluate, evaluate_sweep
from repro.cache import canonical_json
from repro.experiments.scenarios import many_small_faults_scenario
from repro.studies import StudySpec, run_study
from repro.telemetry import tracing


@pytest.fixture(autouse=True)
def _clean_telemetry():
    tracing.disable()
    telemetry.reset_global_registry()
    yield
    tracing.disable()
    telemetry.reset_global_registry()


def _stable_bytes(result) -> str:
    payload = {
        key: value
        for key, value in result.to_dict().items()
        if key != "elapsed_seconds"
    }
    return canonical_json(payload)


def _study_spec() -> StudySpec:
    return StudySpec.from_dict(
        {
            "name": "determinism-probe",
            "base": {"scenario": "many-small-faults"},
            "sweep": {"grid": [{"name": "p_scale", "values": [0.5, 1.0]}]},
            "methods": [
                {"name": "moments"},
                {"name": "montecarlo", "replications": 2000},
            ],
            "seed": 321,
        }
    )


class TestResultBytes:
    def test_seeded_montecarlo_bytes_identical_with_tracing_on(self):
        model = many_small_faults_scenario(n=50)
        baseline = _stable_bytes(evaluate(model, "montecarlo", seed=7, replications=3000))

        events: list[dict] = []
        tracing.configure(sink=events.append)
        traced = _stable_bytes(evaluate(model, "montecarlo", seed=7, replications=3000))
        assert traced == baseline
        assert events, "tracing was armed but the kernel emitted no spans"

    def test_sweep_bytes_identical_with_tracing_on(self):
        model = many_small_faults_scenario(n=50)
        variations = [{"p_scale": scale} for scale in (0.25, 1.0)]
        baseline = [
            _stable_bytes(result)
            for result in evaluate_sweep(model, "montecarlo", variations, seed=9, replications=2000)
        ]
        tracing.configure(sink=lambda event: None)
        traced = [
            _stable_bytes(result)
            for result in evaluate_sweep(model, "montecarlo", variations, seed=9, replications=2000)
        ]
        assert traced == baseline

    def test_metrics_recording_does_not_perturb_exact_results(self):
        model = many_small_faults_scenario(n=50)
        baseline = _stable_bytes(evaluate(model, "exact", max_support=512))
        registry = telemetry.reset_global_registry()
        registry.observe("kernel_seconds", 0.001)
        with_metrics = _stable_bytes(evaluate(model, "exact", max_support=512))
        assert with_metrics == baseline


class TestCacheDigests:
    def test_study_cache_digests_identical_with_tracing_on(self, tmp_path):
        """Same spec, traced and untraced: same records, same digest set."""
        plain = run_study(_study_spec(), cache_dir=tmp_path / "plain", jobs=1)

        tracing.configure(tmp_path / "study.trace.jsonl", export_env=False)
        traced = run_study(_study_spec(), cache_dir=tmp_path / "traced", jobs=1)
        tracing.disable()

        assert traced.records == plain.records
        digests = lambda root: sorted(p.name for p in root.rglob("*.json"))
        assert digests(tmp_path / "traced") == digests(tmp_path / "plain")

        events = [
            json.loads(line)
            for line in (tmp_path / "study.trace.jsonl").read_text().splitlines()
        ]
        names = {event["name"] for event in events}
        # Parent-process spans are always captured; point/group spans may run
        # in pool workers, which only trace when the env var is exported.
        assert {"study.plan", "study.cache_probe", "study.dispatch", "study.aggregate"} <= names
