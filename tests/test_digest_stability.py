"""Golden pins for the content-digest scheme.

Every cache tier in the system -- the study disk cache, the service LRU,
the shared ``/v1/cache`` surface, the router's read-through LRU and its
routing decisions -- keys on :func:`repro.grouping.payload_digest` /
:func:`repro.grouping.group_digest`.  A change to the canonical payload
shape or its serialisation silently invalidates every existing cache
directory and reshuffles every router ring assignment, so the exact
SHA-256 values are pinned here: if one of these tests fails, the digest
scheme changed, and that is a breaking-change decision, not a refactor.

The pinned hexes were computed from the implementation at the commit that
introduced this file; they must never be *updated* casually.
"""

from __future__ import annotations

import json

from repro.grouping import (
    evaluation_payload,
    group_digest,
    group_payload,
    payload_digest,
)
from repro.service.protocol import parse_evaluate_payload

_MODEL = {
    "p": [0.05, 0.02, 0.01],
    "q": [1e-4, 5e-4, 2e-3],
    "names": ["alpha", "beta", "gamma"],
}


class TestGoldenDigests:
    def test_deterministic_moments_payload(self):
        payload = evaluation_payload({"model": _MODEL}, {}, "moments", {}, None)
        assert (
            payload_digest(payload)
            == "7df7764518ab5c1de73f06f7d84b080beea97342567f96c649702ee88ce53b9e"
        )
        # Neutral transforms and no entropy: the group digest collapses to
        # the payload digest.
        assert group_digest(payload) == payload_digest(payload)

    def test_transformed_stochastic_payload(self):
        payload = evaluation_payload(
            {"model": _MODEL},
            {"p_scale": 0.5},
            "montecarlo",
            {"replications": 1000},
            [11],
        )
        assert (
            payload_digest(payload)
            == "393c6f970f113b04fc06c5363af42b78f7cb2ceda6fe9fca552594bdafae7f30"
        )
        assert (
            group_digest(payload)
            == "dfb3135c35a250117c48a28ecc29c3fec5afca231ffe8eec5671f85fd921b519"
        )

    def test_scenario_payload(self):
        payload = evaluation_payload(
            {"scenario": "many-small-faults"}, {"n": 50}, "bounds", {}, None
        )
        assert (
            payload_digest(payload)
            == "86c8c26e359937575e8c869d0f634c312015b7d6ec481fe965e4e7864f4f6cb9"
        )


class TestDigestInvariants:
    def test_wire_request_digests_match_grouping(self):
        """The service request digests are the grouping-module ones, computed
        over the *resolved* request (model round-tripped through
        ``FaultModel.to_dict``, every method option default materialised)."""
        from repro.api import default_registry
        from repro.core.fault_model import FaultModel

        request = parse_evaluate_payload(
            {
                "model": _MODEL,
                "method": "montecarlo",
                "options": {"replications": 1000},
                "seed": 11,
                "p_scale": 0.5,
            }
        )
        resolved_model = FaultModel.from_dict(_MODEL).to_dict()
        resolved_options = default_registry().resolve_options(
            "montecarlo", {"replications": 1000}
        )
        payload = evaluation_payload(
            {"model": resolved_model},
            {"p_scale": 0.5},
            "montecarlo",
            resolved_options,
            [11],
        )
        assert request.digest() == payload_digest(payload)
        assert request.group_key() == group_digest(payload)

    def test_transform_values_share_a_group(self):
        """Batchable transforms differ, group digest does not: the router's
        shard-affinity guarantee (groupmates land on one shard)."""
        digests = {
            group_digest(
                evaluation_payload(
                    {"model": _MODEL},
                    {"p_scale": scale},
                    "montecarlo",
                    {"replications": 1000},
                    [11],
                )
            )
            for scale in (0.25, 0.5, 1.0)
        }
        assert len(digests) == 1

    def test_implicit_defaults_hash_like_explicit(self):
        spelled = evaluation_payload(
            {"model": _MODEL}, {"p_scale": 1.0, "q_scale": 1.0}, "moments", {}, None
        )
        implicit = evaluation_payload({"model": _MODEL}, {}, "moments", {}, None)
        assert payload_digest(spelled) == payload_digest(implicit)

    def test_group_payload_neutralises_only_transforms(self):
        payload = evaluation_payload(
            {"model": _MODEL},
            {"p_scale": 0.5, "q_scale": 2.0},
            "montecarlo",
            {"replications": 1000},
            [11],
        )
        grouped = group_payload(payload)
        assert grouped["params"]["p_scale"] == 1.0
        assert grouped["params"]["q_scale"] == 1.0
        assert grouped["method"] == payload["method"]
        assert grouped["entropy"] == payload["entropy"]

    def test_payload_serialisation_is_canonical(self):
        """Key order must not leak into the digest (canonical JSON)."""
        forward = evaluation_payload({"model": _MODEL}, {}, "moments", {}, None)
        shuffled = json.loads(json.dumps(forward)[::-1][::-1])  # same content
        reordered = {key: shuffled[key] for key in reversed(list(shuffled))}
        assert payload_digest(forward) == payload_digest(reordered)


class TestGoldenRingLayout:
    """The consistent-hash ring's point layout, pinned like a digest.

    Router placement -- and therefore which shard's cache holds which warm
    entry across a whole fleet -- derives from these SHA-256 ring points.
    A layout change reshuffles every deployment's keyspace on upgrade, so
    the exact layout for a fixed shard set is pinned: failing here is a
    breaking-change decision, not a refactor.
    """

    SHARDS = ["shard-a:8001", "shard-b:8002", "shard-c:8003"]

    def test_point_layout_hash_is_pinned(self):
        import hashlib

        from repro.cluster.ring import ConsistentHashRing

        ring = ConsistentHashRing(self.SHARDS, replicas=64)
        text = "\n".join(f"{position}:{shard}" for position, shard in ring._points)
        assert (
            hashlib.sha256(text.encode("utf-8")).hexdigest()
            == "4d7833f6cbfec16e50bb0d22fcc402a0f4111997ecbeb5e0c684dbd1c4f61679"
        )

    def test_equal_weights_reproduce_the_pinned_layout(self):
        """The weighted constructor with weight 1.0 everywhere must emit the
        seed-era layout byte for byte -- upgrading reshuffles nothing."""
        from repro.cluster.ring import ConsistentHashRing

        plain = ConsistentHashRing(self.SHARDS, replicas=64)
        weighted = ConsistentHashRing(
            self.SHARDS, replicas=64, weights={shard: 1.0 for shard in self.SHARDS}
        )
        assert weighted._points == plain._points

    def test_candidate_walk_is_pinned(self):
        from repro.cluster.ring import ConsistentHashRing

        ring = ConsistentHashRing(self.SHARDS, replicas=64)
        assert ring.candidates("key-0000") == [
            "shard-a:8001",
            "shard-c:8003",
            "shard-b:8002",
        ]
