"""Property-based tests for the simulation substrates.

These complement the analytic-inequality properties: whatever fault model
hypothesis generates, the version-generation, adjudication and architecture
layers must respect the structural invariants of the paper's model (a
1-out-of-2 system can never fail where one of its channels succeeds, adding
channels never hurts, forced diversity reduces to the symmetric model, and so
on).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.adjudication.adjudicators import MOutOfNAdjudicator, OneOutOfNAdjudicator, UnanimityAdjudicator
from repro.core.fault_model import FaultModel
from repro.core.moments import r_version_mean
from repro.core.no_common_faults import prob_fault_free_r_versions
from repro.versions.forced_diversity import ForcedDiversityPair
from repro.versions.generation import IndependentDevelopmentProcess


@st.composite
def fault_models(draw, max_faults: int = 10):
    n = draw(st.integers(min_value=1, max_value=max_faults))
    p = draw(
        hnp.arrays(
            dtype=float,
            shape=n,
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    raw_q = draw(
        hnp.arrays(
            dtype=float,
            shape=n,
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    total = raw_q.sum()
    q = raw_q / total if total > 1.0 else raw_q
    return FaultModel(p=p, q=q)


failure_matrices = hnp.arrays(
    dtype=bool,
    shape=st.tuples(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=6)),
)


class TestAdjudicatorProperties:
    @given(failure_matrices)
    @settings(max_examples=200, deadline=None)
    def test_one_out_of_n_never_worse_than_any_channel(self, failures: np.ndarray):
        system_failures = OneOutOfNAdjudicator().system_failures(failures)
        # The 1-out-of-N system fails only where every channel fails.
        for channel in range(failures.shape[1]):
            assert np.all(system_failures <= failures[:, channel])

    @given(failure_matrices)
    @settings(max_examples=200, deadline=None)
    def test_unanimity_never_better_than_any_channel(self, failures: np.ndarray):
        system_failures = UnanimityAdjudicator().system_failures(failures)
        for channel in range(failures.shape[1]):
            assert np.all(system_failures >= failures[:, channel])

    @given(failure_matrices)
    @settings(max_examples=200, deadline=None)
    def test_moon_between_extremes(self, failures: np.ndarray):
        channels = failures.shape[1]
        best = OneOutOfNAdjudicator().system_failures(failures)
        worst = UnanimityAdjudicator().system_failures(failures)
        for required in range(1, channels + 1):
            moon = MOutOfNAdjudicator(required_correct=required, channels=channels)
            system_failures = moon.system_failures(failures)
            assert np.all(system_failures >= best)
            assert np.all(system_failures <= worst)

    @given(failure_matrices)
    @settings(max_examples=200, deadline=None)
    def test_moon_monotone_in_required_correct(self, failures: np.ndarray):
        channels = failures.shape[1]
        previous = None
        for required in range(1, channels + 1):
            current = MOutOfNAdjudicator(required_correct=required, channels=channels).system_failures(
                failures
            )
            if previous is not None:
                assert np.all(current >= previous)
            previous = current


class TestVersionSamplingProperties:
    @given(fault_models(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_pair_pfd_never_exceeds_channel_pfds(self, model: FaultModel, seed: int):
        process = IndependentDevelopmentProcess(model)
        pair = process.sample_pair(np.random.default_rng(seed))
        assert pair.system_pfd() <= pair.channel_a.pfd() + 1e-12
        assert pair.system_pfd() <= pair.channel_b.pfd() + 1e-12

    @given(fault_models(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_version_pfd_bounded_by_total_impact(self, model: FaultModel, seed: int):
        process = IndependentDevelopmentProcess(model)
        version = process.sample_version(np.random.default_rng(seed))
        assert 0.0 <= version.pfd() <= model.q.sum() + 1e-12
        assert version.fault_count <= model.n

    @given(fault_models())
    @settings(max_examples=100, deadline=None)
    def test_more_channels_never_hurt(self, model: FaultModel):
        means = [r_version_mean(model, versions) for versions in (1, 2, 3, 4)]
        assert all(earlier >= later - 1e-15 for earlier, later in zip(means, means[1:]))
        fault_free = [prob_fault_free_r_versions(model, versions) for versions in (1, 2, 3, 4)]
        assert all(later >= earlier - 1e-15 for earlier, later in zip(fault_free, fault_free[1:]))


class TestForcedDiversityProperties:
    @given(fault_models())
    @settings(max_examples=100, deadline=None)
    def test_identical_channels_reduce_to_symmetric_model(self, model: FaultModel):
        pair = ForcedDiversityPair(model, model)
        assert pair.mean_system_pfd() == pytest.approx(r_version_mean(model, 2), abs=1e-12)

    @given(fault_models(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_weakening_one_channel_never_improves_the_system(
        self, model: FaultModel, inflation: float
    ):
        # Increase every p_i of channel B towards 1: the system mean PFD can
        # only increase (or stay equal).
        worse_p = model.p + (1.0 - model.p) * inflation
        worse_channel = FaultModel(p=worse_p, q=model.q)
        baseline = ForcedDiversityPair(model, model)
        degraded = ForcedDiversityPair(model, worse_channel)
        assert degraded.mean_system_pfd() >= baseline.mean_system_pfd() - 1e-12

    @given(fault_models())
    @settings(max_examples=100, deadline=None)
    def test_symmetric_equivalent_preserves_statistics(self, model: FaultModel):
        other = FaultModel(p=np.clip(model.p * 0.5, 0.0, 1.0), q=model.q)
        pair = ForcedDiversityPair(model, other)
        symmetric = pair.as_symmetric_model()
        assert r_version_mean(symmetric, 2) == pytest.approx(pair.mean_system_pfd(), abs=1e-12)
        assert float(np.prod(1 - symmetric.p**2)) == pytest.approx(
            pair.prob_no_common_fault(), abs=1e-12
        )
