"""Batched-vs-scalar equivalence and shared-demand determinism.

Pins the accuracy and reproducibility contracts of the batched sweep fast
path:

* the stacked exact kernel (:mod:`repro.stats.batched`) matches the scalar
  :func:`~repro.core.pfd_distribution.exact_pfd_distribution` point by
  point -- means to float rounding, standard deviations and tail queries to
  the lattice resolution -- and is *exact* while the support fits;
* the shared-demand Monte Carlo kernel (:mod:`repro.montecarlo.sweep`) is a
  deterministic function of ``(seed, model, versions, replications, scale
  envelope)``: the engine's ``chunk_size`` / ``jobs`` knobs never enter,
  repeated calls are identical, and its estimates agree with the analytic
  moments statistically;
* the study runner's batched dispatch leaves digests, caching and
  jobs-invariance untouched.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.no_common_faults import prob_any_common_fault, prob_any_fault
from repro.core.pfd_distribution import exact_pfd_distribution
from repro.montecarlo.engine import MonteCarloEngine
from repro.montecarlo.sweep import simulate_scaled_sweep
from repro.stats.batched import BatchedPMF, batched_scaled_pfd, batched_two_point_pmf

SCALES = (0.125, 0.35, 0.7, 1.0)


def random_model(seed: int, n: int) -> FaultModel:
    rng = np.random.default_rng(seed)
    return FaultModel.random(rng, n=n, p_range=(0.005, 0.2), total_impact=0.4)


class TestBatchedExactEquivalence:
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_exact_while_support_fits(self, seed, n):
        # With the support budget never exceeded, the stacked kernel does the
        # same exact folds as the scalar path: every moment and every tail
        # query must agree to float rounding.
        model = random_model(seed, n)
        batch = batched_scaled_pfd(model, np.array(SCALES), versions=1, max_support=4096)
        for index, scale in enumerate(SCALES):
            scalar = exact_pfd_distribution(model.scaled(scale), 1, max_support=4096)
            assert batch.means()[index] == pytest.approx(scalar.mean(), rel=1e-12, abs=1e-300)
            assert batch.stds()[index] == pytest.approx(scalar.std(), rel=1e-9, abs=1e-15)
            assert batch.quantiles(0.99)[index] == pytest.approx(
                scalar.quantile(0.99), rel=1e-12, abs=1e-15
            )
            assert batch.survival(1e-3)[index] == pytest.approx(
                scalar.survival(1e-3), abs=1e-12
            )

    @pytest.mark.parametrize("n,versions", [(150, 1), (150, 2), (400, 1)])
    def test_lattice_regime_matches_to_resolution(self, n, versions):
        model = random_model(11, n)
        max_support = 1024
        batch = batched_scaled_pfd(
            model, np.array(SCALES), versions=versions, max_support=max_support
        )
        lattice_step = float(batch.support[-1]) / batch.support.size
        for index, scale in enumerate(SCALES):
            scalar = exact_pfd_distribution(
                model.scaled(scale), versions, max_support=max_support
            )
            # Means are preserved exactly by the mean-preserving split.
            assert batch.means()[index] == pytest.approx(scalar.mean(), rel=1e-9)
            assert batch.stds()[index] == pytest.approx(scalar.std(), rel=5e-3)
            assert batch.quantiles(0.9)[index] == pytest.approx(
                scalar.quantile(0.9), abs=8 * lattice_step
            )

    def test_q_scale_is_a_support_rescale(self):
        model = random_model(3, 60)
        q_scales = np.array([0.5, 1.0, 1.5])
        batch = batched_scaled_pfd(
            model, np.ones(3), q_scales, versions=2, max_support=512
        )
        for index, q_scale in enumerate(q_scales):
            scaled = FaultModel(
                p=model.p.copy(), q=model.q * q_scale, names=model.names, strict=False
            )
            scalar = exact_pfd_distribution(scaled, 2, max_support=512)
            assert batch.means()[index] == pytest.approx(scalar.mean(), rel=1e-9)
            assert batch.stds()[index] == pytest.approx(scalar.std(), rel=5e-3)

    def test_single_point_distribution_roundtrip(self):
        model = random_model(5, 8)
        batch = batched_scaled_pfd(model, np.array([0.5]), versions=1, max_support=4096)
        row = batch.distribution(0)
        scalar = exact_pfd_distribution(model.scaled(0.5), 1, max_support=4096)
        np.testing.assert_allclose(row.support, scalar.support, rtol=0, atol=0)
        np.testing.assert_allclose(row.probabilities, scalar.probabilities, atol=1e-14)

    def test_kernel_rejects_bad_input(self):
        with pytest.raises(ValueError, match="max_support"):
            batched_two_point_pmf(np.array([0.1]), np.array([[0.5]]), max_support=None)
        with pytest.raises(ValueError, match="probabilities"):
            batched_two_point_pmf(np.array([0.1]), np.array([[1.5]]))
        model = random_model(1, 4)
        with pytest.raises(ValueError, match="pushes some p_i above 1"):
            batched_scaled_pfd(model, np.array([50.0]))

    def test_zero_q_scale_collapses_to_point_mass(self):
        model = random_model(9, 10)
        batch = batched_scaled_pfd(model, np.ones(2), np.array([0.0, 1.0]), max_support=256)
        assert batch.means()[0] == 0.0
        assert batch.prob_zero()[0] == 1.0
        assert batch.quantiles(0.999)[0] == 0.0
        assert batch.survival(1e-6)[0] == pytest.approx(0.0, abs=1e-12)
        assert batch.distribution(0).support.tolist() == [0.0]


class TestSharedDemandDeterminism:
    def test_engine_knobs_do_not_enter(self, small_model):
        variations = [{"p_scale": scale} for scale in SCALES]
        reference = MonteCarloEngine(small_model).simulate_scaled_sweep(
            4000, variations, versions=2, rng=13
        )
        for engine in (
            MonteCarloEngine(small_model, chunk_size=100),
            MonteCarloEngine(small_model, chunk_size=4000),
            MonteCarloEngine(small_model, jobs=3),
        ):
            assert engine.simulate_scaled_sweep(4000, variations, versions=2, rng=13) == reference

    def test_same_seed_is_bitwise_reproducible(self, small_model):
        variations = [{"p_scale": 0.5}, {"p_scale": 1.0, "q_scale": 2.0}]
        first = simulate_scaled_sweep(small_model, 3000, variations, versions=2, rng=7)
        second = simulate_scaled_sweep(small_model, 3000, variations, versions=2, rng=7)
        assert first == second
        different = simulate_scaled_sweep(small_model, 3000, variations, versions=2, rng=8)
        assert first != different

    def test_scales_are_nested_worlds(self, small_model):
        # Common random numbers make the sweep monotone path by path: a
        # fault present at a scale is present at every larger scale, so the
        # sampled means must be monotone in p_scale (no Monte Carlo noise in
        # the comparison).
        variations = [{"p_scale": scale} for scale in SCALES]
        results = simulate_scaled_sweep(small_model, 5000, variations, versions=2, rng=3)
        means = [result.mean_single for result in results]
        assert all(a <= b + 1e-15 for a, b in zip(means, means[1:]))
        any_fault = [result.prob_any_fault_system for result in results]
        assert all(a <= b + 1e-15 for a, b in zip(any_fault, any_fault[1:]))

    @pytest.mark.parametrize("versions", [1, 2, 3])
    def test_statistically_consistent_with_analytic(self, versions):
        model = random_model(21, 120)
        replications = 60_000
        variations = [{"p_scale": scale} for scale in SCALES]
        results = simulate_scaled_sweep(
            model, replications, variations, versions=versions, rng=5
        )
        for scale, result in zip(SCALES, results):
            scaled = model.scaled(scale)
            single = pfd_moments(scaled, 1)
            system = pfd_moments(scaled, versions)
            z_single = (result.mean_single - single.mean) / (
                single.std / np.sqrt(replications)
            )
            z_system = (result.mean_system - system.mean) / (
                max(system.std, 1e-300) / np.sqrt(replications)
            )
            assert abs(z_single) < 5.0
            assert abs(z_system) < 5.0
            assert result.prob_any_fault_single == pytest.approx(
                prob_any_fault(scaled), abs=0.02
            )
            if versions == 2:
                assert result.prob_any_fault_system == pytest.approx(
                    prob_any_common_fault(scaled), abs=0.02
                )

    def test_marginal_presence_frequencies(self):
        # Each fault's marginal presence must be k * p_i at every sweep
        # scale; checked through the mean fault count of the first version
        # (sum of the marginals).
        model = random_model(2, 40)
        replications = 40_000
        results = simulate_scaled_sweep(
            model, replications, [{"p_scale": scale} for scale in SCALES], versions=1, rng=9
        )
        for scale, result in zip(SCALES, results):
            probability = 1.0 - float(np.prod(1.0 - scale * model.p))
            assert result.prob_any_fault_single == pytest.approx(probability, abs=0.02)

    def test_q_scale_scales_pfds_only(self, small_model):
        base, doubled = simulate_scaled_sweep(
            small_model, 3000, [{"p_scale": 0.5}, {"p_scale": 0.5, "q_scale": 2.0}], rng=4
        )
        assert doubled.mean_single == pytest.approx(2.0 * base.mean_single, rel=1e-12)
        assert doubled.std_system == pytest.approx(2.0 * base.std_system, rel=1e-12)
        assert doubled.prob_any_fault_single == base.prob_any_fault_single
        assert doubled.prob_pfd_zero_system == base.prob_pfd_zero_system

    def test_rejects_bad_sweeps(self, small_model):
        with pytest.raises(ValueError, match="pushes some p_i above 1"):
            simulate_scaled_sweep(small_model, 100, [{"p_scale": 1000.0}])
        with pytest.raises(ValueError, match="replications"):
            simulate_scaled_sweep(small_model, 0, [{"p_scale": 0.5}])
        from repro.versions.correlated import CopulaDevelopmentProcess

        engine = MonteCarloEngine(
            small_model,
            process=CopulaDevelopmentProcess(model=small_model, correlation=0.4),
        )
        with pytest.raises(ValueError, match="independent development process"):
            engine.simulate_scaled_sweep(100, [{"p_scale": 0.5}])
