"""Property-based tests for the paper's inequalities.

Every inequality the paper proves (or conjectures) is checked with
hypothesis-generated fault models, so the claims are exercised across the
whole admissible parameter space rather than at a few hand-picked points.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.bounds import (
    confidence_bound_from_bound,
    confidence_bound_from_moments,
    mean_gain_factor,
    std_gain_factor,
)
from repro.core.fault_model import FaultModel
from repro.core.moments import (
    single_version_mean,
    single_version_std,
    two_version_mean,
    two_version_std,
)
from repro.core.no_common_faults import prob_any_fault, risk_ratio, success_ratio
from repro.core.normal_approximation import bound_gain_ratio
from repro.core.process_improvement import proportional_improvement_derivative


@st.composite
def fault_models(draw, max_faults: int = 12, max_p: float = 1.0):
    """Generate admissible fault models with n up to ``max_faults``."""
    n = draw(st.integers(min_value=1, max_value=max_faults))
    p = draw(
        hnp.arrays(
            dtype=float,
            shape=n,
            elements=st.floats(min_value=0.0, max_value=max_p, allow_nan=False),
        )
    )
    raw_q = draw(
        hnp.arrays(
            dtype=float,
            shape=n,
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    total = raw_q.sum()
    q = raw_q / total if total > 1.0 else raw_q
    return FaultModel(p=p, q=q)


@st.composite
def nondegenerate_models(draw, max_faults: int = 12):
    """Fault models with at least one strictly positive p_i (so ratios are defined)."""
    model = draw(fault_models(max_faults=max_faults))
    if model.p.max() == 0.0:
        boosted = model.p.copy()
        boosted[0] = draw(st.floats(min_value=1e-6, max_value=1.0))
        model = FaultModel(p=boosted, q=model.q)
    return model


class TestMomentInequalities:
    @given(fault_models())
    @settings(max_examples=200, deadline=None)
    def test_eq4_mean_bound(self, model: FaultModel):
        assert two_version_mean(model) <= mean_gain_factor(model.p_max) * single_version_mean(
            model
        ) + 1e-12

    @given(fault_models())
    @settings(max_examples=200, deadline=None)
    def test_eq9_std_bound(self, model: FaultModel):
        assert two_version_std(model) <= std_gain_factor(model.p_max) * single_version_std(
            model
        ) + 1e-12

    @given(fault_models())
    @settings(max_examples=200, deadline=None)
    def test_two_version_mean_never_exceeds_single(self, model: FaultModel):
        assert two_version_mean(model) <= single_version_mean(model) + 1e-15

    @given(fault_models())
    @settings(max_examples=200, deadline=None)
    def test_el_lm_rederivation_system_worse_than_independence(self, model: FaultModel):
        # Section 2.2: the EL/LM conclusion that E[Theta_2] >= (E[Theta_1])^2
        # "is easily re-derived here".
        assert two_version_mean(model) >= single_version_mean(model) ** 2 - 1e-15

    @given(fault_models(max_p=0.618033988))
    @settings(max_examples=200, deadline=None)
    def test_std_contraction_below_threshold(self, model: FaultModel):
        # Section 3.1.2: when every p_i is below (sqrt(5)-1)/2 the two-version
        # standard deviation cannot exceed the single-version one.
        assert two_version_std(model) <= single_version_std(model) + 1e-12


class TestConfidenceBoundInequalities:
    @given(fault_models(), st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=200, deadline=None)
    def test_eq11_bound(self, model: FaultModel, k: float):
        actual = two_version_mean(model) + k * two_version_std(model)
        bound = confidence_bound_from_moments(
            single_version_mean(model), single_version_std(model), model.p_max, k
        )
        assert actual <= bound + 1e-12

    @given(fault_models(), st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=200, deadline=None)
    def test_eq12_bound_looser_than_eq11(self, model: FaultModel, k: float):
        one_version_bound = single_version_mean(model) + k * single_version_std(model)
        eq11 = confidence_bound_from_moments(
            single_version_mean(model), single_version_std(model), model.p_max, k
        )
        eq12 = confidence_bound_from_bound(one_version_bound, model.p_max)
        assert eq11 <= eq12 + 1e-12

    @given(nondegenerate_models(), st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=200, deadline=None)
    def test_bound_gain_ratio_bounded_by_guaranteed_factor(self, model: FaultModel, k: float):
        # The ratio form of eq. (12) only makes sense when the single-version
        # bound is positive; with an all-zero bound the convention returns 1.
        assume(single_version_mean(model) + k * single_version_std(model) > 0.0)
        assert bound_gain_ratio(model, k) <= std_gain_factor(model.p_max) + 1e-9


class TestRiskRatioProperties:
    @given(nondegenerate_models())
    @settings(max_examples=200, deadline=None)
    def test_eq10_between_zero_and_one(self, model: FaultModel):
        ratio = risk_ratio(model)
        assert 0.0 <= ratio <= 1.0 + 1e-12

    @given(nondegenerate_models())
    @settings(max_examples=200, deadline=None)
    def test_footnote_success_ratio_at_least_one(self, model: FaultModel):
        assert success_ratio(model) >= 1.0 - 1e-12

    @given(nondegenerate_models(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=150, deadline=None)
    def test_appendix_b_proportional_derivative_non_negative(self, model: FaultModel, k: float):
        # Scale the base model down so k * b_i never exceeds 1, and discard
        # degenerate cases where every scaled probability underflows to the
        # point that P(N_1 > 0) rounds to zero (the derivative is undefined).
        base = FaultModel(p=model.p / max(model.p_max, 1e-9) * 0.99, q=model.q)
        assume(prob_any_fault(base.scaled(k)) > 0.0)
        assert proportional_improvement_derivative(base, k) >= -1e-10

    @given(nondegenerate_models(), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=150, deadline=None)
    def test_proportional_improvement_never_reduces_gain(self, model: FaultModel, factor: float):
        # Direct statement of Appendix B: a proportionally better process has a
        # risk ratio no larger than the original one.  Discard examples whose
        # probabilities are so tiny that P(N_1 > 0) underflows to zero after
        # scaling (the ratio then falls back to its degenerate convention).
        improved = model.scaled(factor)
        assume(prob_any_fault(improved) > 0.0)
        assert risk_ratio(improved) <= risk_ratio(model) + 1e-12
