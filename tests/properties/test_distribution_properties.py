"""Property-based tests for the statistical substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.no_common_faults import prob_fault_free_version
from repro.core.pfd_distribution import exact_pfd_distribution
from repro.stats.discrete import DiscreteDistribution
from repro.stats.poisson_binomial import PoissonBinomial

probability_arrays = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=15),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class TestPoissonBinomialProperties:
    @given(probability_arrays)
    @settings(max_examples=200, deadline=None)
    def test_pmf_is_a_distribution(self, probabilities: np.ndarray):
        distribution = PoissonBinomial(probabilities)
        pmf = distribution.pmf()
        assert pmf.shape == (distribution.n + 1,)
        assert np.all(pmf >= 0.0)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    @given(probability_arrays)
    @settings(max_examples=200, deadline=None)
    def test_pmf_mean_matches_formula(self, probabilities: np.ndarray):
        distribution = PoissonBinomial(probabilities)
        counts = np.arange(distribution.n + 1)
        assert float(np.dot(counts, distribution.pmf())) == pytest.approx(
            distribution.mean(), abs=1e-9
        )

    @given(probability_arrays)
    @settings(max_examples=200, deadline=None)
    def test_pmf_variance_matches_formula(self, probabilities: np.ndarray):
        distribution = PoissonBinomial(probabilities)
        counts = np.arange(distribution.n + 1)
        pmf = distribution.pmf()
        mean = float(np.dot(counts, pmf))
        variance = float(np.dot((counts - mean) ** 2, pmf))
        assert variance == pytest.approx(distribution.variance(), abs=1e-9)

    @given(probability_arrays)
    @settings(max_examples=200, deadline=None)
    def test_prob_zero_consistency(self, probabilities: np.ndarray):
        distribution = PoissonBinomial(probabilities)
        assert distribution.pmf()[0] == pytest.approx(distribution.prob_zero(), abs=1e-9)

    @given(probability_arrays)
    @settings(max_examples=200, deadline=None)
    def test_squared_distribution_stochastically_smaller(self, probabilities: np.ndarray):
        # The common-fault count N2 is stochastically no larger than N1:
        # its CDF dominates at every point.
        original = PoissonBinomial(probabilities)
        squared = original.squared()
        np.testing.assert_array_compare(
            lambda a, b: a >= b - 1e-9, squared.cdf(), original.cdf()
        )


@st.composite
def small_fault_models(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    p = draw(
        hnp.arrays(
            dtype=float,
            shape=n,
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    raw_q = draw(
        hnp.arrays(
            dtype=float,
            shape=n,
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    total = raw_q.sum()
    q = raw_q / total if total > 1.0 else raw_q
    return FaultModel(p=p, q=q)


class TestExactPfdDistributionProperties:
    @given(small_fault_models(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=150, deadline=None)
    def test_moments_match_closed_forms(self, model: FaultModel, versions: int):
        distribution = exact_pfd_distribution(model, versions, max_support=None)
        moments = pfd_moments(model, versions)
        assert distribution.mean() == pytest.approx(moments.mean, abs=1e-10)
        assert distribution.variance() == pytest.approx(moments.variance, abs=1e-10)

    @given(small_fault_models())
    @settings(max_examples=150, deadline=None)
    def test_support_bounded_by_total_impact(self, model: FaultModel):
        distribution = exact_pfd_distribution(model, 1, max_support=None)
        assert distribution.support.min() >= -1e-12
        assert distribution.support.max() <= model.q.sum() + 1e-12

    @given(small_fault_models())
    @settings(max_examples=150, deadline=None)
    def test_prob_zero_at_least_fault_free_probability(self, model: FaultModel):
        # P(Theta = 0) >= P(no fault present): faults with q_i = 0 also leave
        # the PFD at zero.
        distribution = exact_pfd_distribution(model, 1, max_support=None)
        assert distribution.prob_zero() >= prob_fault_free_version(model) - 1e-12

    @given(small_fault_models(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=100, deadline=None)
    def test_cdf_monotone(self, model: FaultModel, seed: int):
        distribution = exact_pfd_distribution(model, 2, max_support=None)
        rng = np.random.default_rng(seed)
        points = np.sort(rng.random(5) * (model.q.sum() + 0.01))
        cdf_values = [distribution.cdf(float(x)) for x in points]
        assert all(a <= b + 1e-12 for a, b in zip(cdf_values, cdf_values[1:]))


class TestDiscreteDistributionProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_convolution_mean_is_additive(self, components):
        distributions = [DiscreteDistribution.two_point(value, probability) for value, probability in components]
        combined = DiscreteDistribution.convolve_many(distributions)
        expected_mean = sum(d.mean() for d in distributions)
        expected_variance = sum(d.variance() for d in distributions)
        assert combined.mean() == pytest.approx(expected_mean, abs=1e-10)
        assert combined.variance() == pytest.approx(expected_variance, abs=1e-10)
