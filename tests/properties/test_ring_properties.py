"""Property-based tests for consistent hashing and replicated placement.

Hypothesis explores shard sets, keys, weights and exclusion patterns that
example-based tests would never enumerate; the properties are the ring's
load-bearing contracts: candidate completeness, placement stability under
unrelated failures, and bounded key movement on reconfiguration.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import ConsistentHashRing, ReplicatedPlacement

shard_sets = st.lists(
    st.from_regex(r"[a-z]{1,8}:[0-9]{2,4}", fullmatch=True),
    min_size=2,
    max_size=8,
    unique=True,
)
keys = st.text(min_size=1, max_size=32)


class TestCandidateProperties:
    @given(shard_sets, keys)
    @settings(max_examples=150, deadline=None)
    def test_candidates_is_a_permutation_of_the_shards(self, shards, key):
        ring = ConsistentHashRing(shards, replicas=16)
        candidates = ring.candidates(key)
        assert sorted(candidates) == sorted(shards)

    @given(shard_sets, keys)
    @settings(max_examples=150, deadline=None)
    def test_owner_is_the_first_candidate(self, shards, key):
        ring = ConsistentHashRing(shards, replicas=16)
        assert ring.owner(key) == ring.candidates(key)[0]

    @given(shard_sets, keys, st.randoms(use_true_random=False))
    @settings(max_examples=150, deadline=None)
    def test_exclusion_preserves_candidate_order(self, shards, key, rng):
        """Excluding shards filters the candidate walk; it never reorders
        the survivors -- that is what makes failover placement stable."""
        ring = ConsistentHashRing(shards, replicas=16)
        full = ring.candidates(key)
        excluded = {shard for shard in shards if rng.random() < 0.4}
        survivors = [shard for shard in full if shard not in excluded]
        if survivors:
            assert ring.owner(key, excluded=excluded) == survivors[0]
        else:
            assert ring.owner(key, excluded=excluded) is None


class TestReplicationProperties:
    @given(shard_sets, keys, st.data())
    @settings(max_examples=150, deadline=None)
    def test_replica_set_stable_under_unrelated_exclusion(self, shards, key, data):
        """Ejecting a shard outside a key's replica set never moves the key."""
        replication = data.draw(
            st.integers(min_value=1, max_value=len(shards) - 1), label="replication"
        )
        ring = ConsistentHashRing(shards, replicas=16)
        placement = ReplicatedPlacement(ring, replication=replication)
        replicas = placement.replica_set(key)
        outsiders = [shard for shard in shards if shard not in replicas]
        if outsiders:
            outsider = data.draw(st.sampled_from(outsiders), label="outsider")
            assert placement.replica_set(key, excluded={outsider}) == replicas

    @given(shard_sets, keys, st.data())
    @settings(max_examples=150, deadline=None)
    def test_replica_set_size_and_distinctness(self, shards, key, data):
        replication = data.draw(
            st.integers(min_value=1, max_value=len(shards)), label="replication"
        )
        ring = ConsistentHashRing(shards, replicas=16)
        placement = ReplicatedPlacement(ring, replication=replication)
        replicas = placement.replica_set(key)
        assert len(replicas) == len(set(replicas)) == replication


class TestWeightChangeProperties:
    @given(
        shard_sets,
        st.lists(keys, min_size=1, max_size=40, unique=True),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_key_movement_on_weight_change_is_bounded(self, shards, key_list, data):
        """Reweighting one shard only moves keys whose old or new owner is
        that shard -- every other assignment is untouched."""
        target = data.draw(st.sampled_from(shards), label="target")
        weight = data.draw(
            st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
            label="weight",
        )
        before = ConsistentHashRing(shards, replicas=16)
        after = ConsistentHashRing(shards, replicas=16, weights={target: weight})
        for key in key_list:
            old, new = before.owner(key), after.owner(key)
            if old != new:
                assert target in (old, new)
