"""Chunked-equals-monolithic property: chunking is purely a memory knob.

The contract of ``MonteCarloEngine(chunk_size=...)`` is that the sequential
chunked path produces *bitwise-identical* results to the in-memory path for
the same seed -- across scenarios, chunk sizes (including sizes that do not
divide the replication count) and simulation kinds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.experiments.scenarios import (
    many_small_faults_scenario,
    protection_system_scenario,
)
from repro.montecarlo.engine import MonteCarloEngine
from repro.versions.correlated import CommonCauseDevelopmentProcess, CopulaDevelopmentProcess

REPLICATIONS = 2_000
CHUNK_SIZES = [1, 17, 256, 1999, 2_000, 50_000]


@pytest.fixture(scope="module")
def scenario_models() -> dict[str, FaultModel]:
    return {
        "homogeneous": FaultModel.homogeneous(n=40, probability=0.05, impact=0.002),
        "random": many_small_faults_scenario(n=120, rng=23),
        "protection-system": protection_system_scenario(rng=11).model,
    }


def _assert_identical_summaries(first, second) -> None:
    assert np.array_equal(first.pfds.samples, second.pfds.samples)
    assert np.array_equal(first.fault_counts.samples, second.fault_counts.samples)
    assert first.mean_pfd() == second.mean_pfd()
    assert first.std_pfd() == second.std_pfd()
    assert first.prob_any_fault() == second.prob_any_fault()
    assert first.pfd_percentile(0.99) == second.pfd_percentile(0.99)


class TestChunkedEqualsMonolithic:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_single_versions(self, scenario_models, chunk_size):
        for name, model in scenario_models.items():
            monolithic = MonteCarloEngine(model).simulate_single_versions(REPLICATIONS, rng=7)
            chunked = MonteCarloEngine(model, chunk_size=chunk_size).simulate_single_versions(
                REPLICATIONS, rng=7
            )
            _assert_identical_summaries(monolithic, chunked)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_paired(self, scenario_models, chunk_size):
        for name, model in scenario_models.items():
            monolithic = MonteCarloEngine(model).simulate_paired(REPLICATIONS, rng=11)
            chunked = MonteCarloEngine(model, chunk_size=chunk_size).simulate_paired(
                REPLICATIONS, rng=11
            )
            _assert_identical_summaries(monolithic.single, chunked.single)
            _assert_identical_summaries(monolithic.system, chunked.system)
            assert monolithic.risk_ratio() == chunked.risk_ratio()
            assert monolithic.mean_ratio() == chunked.mean_ratio()

    @pytest.mark.parametrize("versions", [2, 3])
    def test_systems(self, scenario_models, versions):
        for name, model in scenario_models.items():
            monolithic = MonteCarloEngine(model).simulate_systems(
                REPLICATIONS, versions=versions, rng=13
            )
            chunked = MonteCarloEngine(model, chunk_size=137).simulate_systems(
                REPLICATIONS, versions=versions, rng=13
            )
            _assert_identical_summaries(monolithic, chunked)

    def test_correlated_processes_chunk_identically(self, scenario_models):
        """The guarantee holds for any process that draws chunks sequentially."""
        model = scenario_models["random"]
        for process in (
            CommonCauseDevelopmentProcess(model, bad_day_weight=0.1, inflation=2.0),
            CopulaDevelopmentProcess(model, correlation=0.4),
        ):
            monolithic = MonteCarloEngine(model, process=process).simulate_paired(
                REPLICATIONS, rng=3
            )
            chunked = MonteCarloEngine(model, process=process, chunk_size=73).simulate_paired(
                REPLICATIONS, rng=3
            )
            _assert_identical_summaries(monolithic.single, chunked.single)
            _assert_identical_summaries(monolithic.system, chunked.system)

    def test_streaming_matches_sample_summaries(self, scenario_models):
        """Streaming accumulators agree with the sample-based summaries."""
        for name, model in scenario_models.items():
            engine = MonteCarloEngine(model, chunk_size=311)
            samples = engine.simulate_paired(REPLICATIONS, rng=19)
            streamed = engine.simulate_paired_streaming(REPLICATIONS, rng=19)
            for side in ("single", "system"):
                sample_side = getattr(samples, side)
                stream_side = getattr(streamed, side)
                assert stream_side.mean_pfd() == pytest.approx(
                    sample_side.mean_pfd(), rel=1e-12, abs=1e-18
                )
                assert stream_side.std_pfd() == pytest.approx(
                    sample_side.std_pfd(), rel=1e-10, abs=1e-18
                )
                assert stream_side.prob_any_fault() == sample_side.prob_any_fault()
                assert stream_side.prob_pfd_zero() == sample_side.pfds.prob_zero()
            assert streamed.risk_ratio() == pytest.approx(samples.risk_ratio(), rel=1e-12)
