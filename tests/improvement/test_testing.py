"""Tests for the testing-campaign process-improvement mechanism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import single_version_mean
from repro.core.no_common_faults import risk_ratio
from repro.improvement.testing import TestingCampaign


@pytest.fixture
def model() -> FaultModel:
    # Fault 1 fails often (large region) but is rarely introduced; fault 2 is
    # the more probable mistake but its failure region is tiny, so testing
    # will find the first long before the second.
    return FaultModel(p=np.array([0.1, 0.3]), q=np.array([0.05, 5e-7]))


class TestValidation:
    def test_rejects_bad_effectiveness(self, model: FaultModel):
        with pytest.raises(ValueError):
            TestingCampaign(model, effectiveness=1.5)
        with pytest.raises(ValueError):
            TestingCampaign(model, effectiveness=np.array([0.5, 0.5, 0.5]))

    def test_rejects_bad_repair_probability(self, model: FaultModel):
        with pytest.raises(ValueError):
            TestingCampaign(model, repair_probability=-0.1)

    def test_rejects_negative_effort(self, model: FaultModel):
        with pytest.raises(ValueError):
            TestingCampaign(model).detection_probability(-1)
        with pytest.raises(ValueError):
            TestingCampaign(model).trajectory([])
        with pytest.raises(ValueError):
            TestingCampaign(model).trajectory([-5])


class TestDetectionAndSurvival:
    def test_no_testing_changes_nothing(self, model: FaultModel):
        campaign = TestingCampaign(model)
        released = campaign.released_model(0)
        np.testing.assert_allclose(released.p, model.p)
        np.testing.assert_allclose(released.q, model.q)

    def test_detection_probability_formula(self, model: FaultModel):
        campaign = TestingCampaign(model, effectiveness=0.5)
        detection = campaign.detection_probability(10)
        expected = 1.0 - (1.0 - 0.5 * model.q) ** 10
        np.testing.assert_allclose(detection, expected)

    def test_large_regions_found_first(self, model: FaultModel):
        campaign = TestingCampaign(model)
        detection = campaign.detection_probability(100)
        assert detection[0] > detection[1]

    def test_survival_with_imperfect_repair(self, model: FaultModel):
        perfect = TestingCampaign(model, repair_probability=1.0)
        sloppy = TestingCampaign(model, repair_probability=0.5)
        assert np.all(
            sloppy.survival_probability(50) >= perfect.survival_probability(50)
        )

    def test_released_probabilities_never_increase(self, model: FaultModel):
        campaign = TestingCampaign(model)
        for effort in (1, 10, 100, 10_000):
            released = campaign.released_model(effort)
            assert np.all(released.p <= model.p + 1e-15)

    def test_extensive_testing_removes_testable_faults(self, model: FaultModel):
        campaign = TestingCampaign(model)
        released = campaign.released_model(1_000_000)
        # The big-region fault is essentially gone; the tiny-region fault survives.
        assert released.p[0] < 1e-6
        assert released.p[1] > 0.05


class TestTrajectory:
    def test_reliability_always_improves(self, model: FaultModel):
        trajectory = TestingCampaign(model).trajectory([0, 10, 100, 1_000, 10_000])
        assert trajectory.reliability_always_improves()
        assert trajectory.single_version_means[0] == pytest.approx(single_version_mean(model))

    def test_gain_can_reverse_under_testing(self, model: FaultModel):
        # Testing removes the easy-to-find (large-region) fault first, so the
        # released versions become dominated by the more probable but
        # hard-to-find fault -- the Appendix A situation in which the
        # diversity gain deteriorates even though reliability improves.
        trajectory = TestingCampaign(model).trajectory([0, 10, 50, 200, 1_000, 5_000])
        assert trajectory.reliability_always_improves()
        assert not trajectory.gain_is_monotone()
        # The released model's risk ratio tends to the surviving fault's
        # introduction probability, which is *worse* (larger) than the fresh
        # model's ratio.
        assert trajectory.risk_ratios[-1] > trajectory.risk_ratios[0]

    def test_trajectory_rows_structure(self, model: FaultModel):
        trajectory = TestingCampaign(model).trajectory([0, 10])
        rows = trajectory.rows()
        assert len(rows) == 2
        assert rows[0]["test_demands"] == 0
        assert rows[0]["risk_ratio"] == pytest.approx(risk_ratio(model))

    def test_equal_region_sizes_keep_gain_improving(self):
        # When all failure regions are the same size, testing scales every p_i
        # by the same factor (a proportional improvement), so by Appendix B the
        # gain can only improve as testing effort grows.
        homogeneous = FaultModel(p=np.array([0.3, 0.2, 0.1]), q=np.full(3, 0.01))
        trajectory = TestingCampaign(homogeneous).trajectory([0, 10, 100, 1_000])
        assert trajectory.gain_is_monotone()
