"""End-to-end workflow tests mirroring the examples."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assessment.bayesian import BayesianPfdAssessment
from repro.assessment.confidence import claim_from_system
from repro.assessment.sil import SafetyIntegrityLevel, sil_claim_for_system
from repro.core.gain import diversity_gain_summary
from repro.core.system import OneOutOfTwoSystem, SingleVersionSystem
from repro.experiments.knight_leveson import SyntheticNVersionExperiment
from repro.experiments.scenarios import high_quality_scenario, many_small_faults_scenario


class TestAssessorWorkflow:
    def test_high_quality_scenario_full_chain(self):
        model = high_quality_scenario()
        single = SingleVersionSystem(model)
        pair = OneOutOfTwoSystem(model)

        summary = diversity_gain_summary(model, confidence=0.99)
        assert summary.mean_ratio < summary.guaranteed_mean_ratio + 1e-12
        assert summary.risk_ratio < 0.1  # diversity buys a lot in this regime

        single_claim = claim_from_system(single, 0.99, method="exact-distribution")
        pair_claim = claim_from_system(pair, 0.99, method="exact-distribution")
        assert pair_claim.bound <= single_claim.bound

        pair_sil = sil_claim_for_system(pair, 0.99, method="exact-distribution")
        single_sil = sil_claim_for_system(single, 0.99, method="exact-distribution")
        assert pair_sil.level >= single_sil.level

    def test_operational_evidence_improves_claim(self):
        model = high_quality_scenario()
        assessment = BayesianPfdAssessment.from_model(model, versions=2)
        prior_probability = assessment.prob_requirement_met(1e-5, demands=0)
        posterior_probability = assessment.prob_requirement_met(1e-5, demands=50_000)
        assert posterior_probability >= prior_probability
        # The prior alone cannot support a very high confidence in this strict
        # requirement; failure-free operation eventually can.
        needed = assessment.demands_needed_for_confidence(1e-5, 0.9999)
        assert needed is not None and needed > 0
        assert assessment.prob_requirement_met(1e-5, needed) >= 0.9999

    def test_many_small_faults_scenario_normal_regime(self):
        model = many_small_faults_scenario(n=150)
        single = SingleVersionSystem(model)
        pair = OneOutOfTwoSystem(model)
        # Normal approximation and exact distribution agree reasonably well in
        # this regime (that is what makes it the Section 5 regime).
        assert single.normal_bound(0.99) == pytest.approx(single.exact_bound(0.99), rel=0.2)
        # And diversity helps by at least the guaranteed factors.
        assert pair.mean_pfd() <= model.p_max * single.mean_pfd() + 1e-15
        assert pair.normal_bound(0.99) <= single.normal_bound(0.99)


class TestExperimentWorkflow:
    def test_synthetic_knight_leveson_supports_section7(self):
        # Run several replications of the synthetic 27-version experiment and
        # check the Section 7 qualitative observation holds in the overwhelming
        # majority of them.
        model = many_small_faults_scenario(n=60)
        experiment = SyntheticNVersionExperiment(model, version_count=27)
        results = experiment.run_replicated(20, rng=0)
        mean_reduced = sum(result.diversity_reduced_mean() for result in results)
        std_reduced = sum(result.diversity_reduced_std() for result in results)
        assert mean_reduced == 20
        assert std_reduced >= 19

    def test_sample_statistics_bracket_model_predictions(self):
        model = many_small_faults_scenario(n=60)
        experiment = SyntheticNVersionExperiment(model, version_count=200)
        result = experiment.run(rng=1)
        expected = experiment.expected_statistics()
        assert result.single_pfds.mean() == pytest.approx(expected["single_mean"], rel=0.1)
        assert result.pair_pfds.mean() == pytest.approx(expected["pair_mean"], rel=0.35)
