"""Integration tests: Monte Carlo simulation versus the analytic model.

These tests close the loop across subpackages: the analytic formulas of
:mod:`repro.core`, the fault-creation simulation of :mod:`repro.versions` /
:mod:`repro.montecarlo`, and the demand-space geometry of
:mod:`repro.demandspace` must all tell the same story.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adjudication.architectures import NVersionSystem
from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.no_common_faults import risk_ratio
from repro.core.pfd_distribution import exact_pfd_distribution
from repro.core.system import OneOutOfTwoSystem
from repro.experiments.scenarios import protection_system_scenario
from repro.montecarlo.engine import MonteCarloEngine
from repro.versions.generation import IndependentDevelopmentProcess


@pytest.fixture(scope="module")
def moderate_model() -> FaultModel:
    return FaultModel(
        p=np.array([0.25, 0.15, 0.1, 0.05]),
        q=np.array([0.05, 0.1, 0.02, 0.2]),
    )


class TestAnalyticVersusSimulation:
    def test_headline_quantities_agree(self, moderate_model: FaultModel):
        comparison = MonteCarloEngine(moderate_model).compare_with_analytic(150_000, rng=0)
        for key in ("mean_single", "mean_system"):
            entry = comparison[key]
            assert entry["simulated"] == pytest.approx(
                entry["analytic"], abs=5 * entry["standard_error"]
            )
        for key in ("std_single", "std_system", "prob_any_fault", "prob_any_common_fault"):
            entry = comparison[key]
            assert entry["simulated"] == pytest.approx(entry["analytic"], rel=0.05)

    def test_risk_ratio_agreement(self, moderate_model: FaultModel):
        result = MonteCarloEngine(moderate_model).simulate_paired(150_000, rng=1)
        assert result.risk_ratio() == pytest.approx(risk_ratio(moderate_model), rel=0.05)

    def test_exact_distribution_matches_simulation_cdf(self, moderate_model: FaultModel):
        distribution = exact_pfd_distribution(moderate_model, 2, max_support=None)
        samples = OneOutOfTwoSystem(moderate_model).sample_pfd(np.random.default_rng(2), 200_000)
        for threshold in (0.0, 0.02, 0.05, 0.1, 0.2):
            empirical = float(np.mean(samples <= threshold))
            assert distribution.cdf(threshold) == pytest.approx(empirical, abs=0.01)


class TestGeometryConsistency:
    def test_protection_scenario_end_to_end(self):
        """Fault model derived from geometry == architecture simulation == formulas."""
        scenario = protection_system_scenario(rng=11)
        process = IndependentDevelopmentProcess(scenario.model)
        rng = np.random.default_rng(3)

        # Develop many pairs; compare the average simulated *demand-level*
        # system failure rate against the analytic mean system PFD.
        pair_count, demands_per_pair = 60, 4_000
        failure_rates = []
        analytic_pair_pfds = []
        for _ in range(pair_count):
            pair = process.sample_pair(rng)
            system = NVersionSystem(
                [pair.channel_a, pair.channel_b], scenario.regions, scenario.profile
            )
            simulated = system.simulate(rng, demands_per_pair)
            failure_rates.append(simulated.system_pfd_estimate)
            analytic_pair_pfds.append(pair.system_pfd())
        simulated_mean = float(np.mean(failure_rates))
        analytic_mean = pfd_moments(scenario.model, 2).mean
        per_pair_mean = float(np.mean(analytic_pair_pfds))

        # The demand-level simulation should agree with the per-pair analytic
        # PFDs it realised, and the per-pair values should be in the right
        # ballpark of the population mean (they are a small sample of a very
        # skewed distribution, hence the loose tolerance).
        assert simulated_mean == pytest.approx(per_pair_mean, abs=2e-3)
        assert abs(per_pair_mean - analytic_mean) < 0.02

    def test_single_channel_demand_simulation_matches_version_pfd(self):
        scenario = protection_system_scenario(rng=11)
        process = IndependentDevelopmentProcess(scenario.model)
        rng = np.random.default_rng(4)
        version = None
        # Find a version with at least one fault so the comparison is non-trivial.
        for _ in range(200):
            candidate = process.sample_version(rng)
            if not candidate.is_fault_free():
                version = candidate
                break
        assert version is not None
        system = NVersionSystem([version], scenario.regions, scenario.profile)
        result = system.simulate(rng, 60_000)
        assert result.system_pfd_estimate == pytest.approx(
            version.pfd(), abs=max(5 * result.system_pfd_standard_error, 2e-3)
        )
