"""Smoke tests: every example script must run cleanly from a fresh interpreter."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    names = {script.name for script in EXAMPLE_SCRIPTS}
    assert {
        "quickstart.py",
        "protection_system_assessment.py",
        "process_improvement_study.py",
        "knight_leveson_replication.py",
        "assumption_sensitivity.py",
        "parameter_sweep_study.py",
    } <= names


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_runs_cleanly(script: pathlib.Path):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    # Every example prints a report of some kind.
    assert len(completed.stdout.strip()) > 100


def test_quickstart_mentions_paper_table():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "Section 5.1" in completed.stdout
    assert "0.866" in completed.stdout
