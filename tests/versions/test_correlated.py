"""Tests for correlated development processes (Section 6.1 relaxations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.versions.correlated import CommonCauseDevelopmentProcess, CopulaDevelopmentProcess


@pytest.fixture
def model() -> FaultModel:
    return FaultModel(p=np.array([0.2, 0.3, 0.25]), q=np.array([0.1, 0.1, 0.1]))


class TestCommonCauseProcess:
    def test_marginals_preserved(self, model: FaultModel):
        process = CommonCauseDevelopmentProcess(model, bad_day_weight=0.2, inflation=2.5)
        matrix = process.sample_fault_matrix(np.random.default_rng(0), 100_000)
        np.testing.assert_allclose(matrix.mean(axis=0), model.p, atol=0.01)

    def test_positive_correlation_within_version(self, model: FaultModel):
        process = CommonCauseDevelopmentProcess(model, bad_day_weight=0.2, inflation=3.0)
        matrix = process.sample_fault_matrix(np.random.default_rng(1), 100_000)
        correlation = np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1]
        assert correlation > 0.01

    def test_shared_state_increases_common_fault_rate(self, model: FaultModel):
        independent_like = CommonCauseDevelopmentProcess(
            model, bad_day_weight=0.2, inflation=3.0, shared_across_channels=False
        )
        shared = CommonCauseDevelopmentProcess(
            model, bad_day_weight=0.2, inflation=3.0, shared_across_channels=True
        )
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        unshared_pfds = independent_like.sample_system_pfds(rng_a, 30_000)
        shared_pfds = shared.sample_system_pfds(rng_b, 30_000)
        assert shared_pfds.mean() > unshared_pfds.mean()

    def test_sample_pair_shared(self, model: FaultModel):
        process = CommonCauseDevelopmentProcess(
            model, bad_day_weight=0.3, inflation=2.0, shared_across_channels=True
        )
        pair = process.sample_pair(np.random.default_rng(3))
        assert pair.channel_a.model.n == model.n

    def test_validation(self, model: FaultModel):
        with pytest.raises(ValueError):
            CommonCauseDevelopmentProcess(model, bad_day_weight=0.0, inflation=2.0)
        with pytest.raises(ValueError):
            CommonCauseDevelopmentProcess(model, bad_day_weight=0.2, inflation=0.5)
        with pytest.raises(ValueError):
            CommonCauseDevelopmentProcess(model, bad_day_weight=0.2, inflation=5.0)
        # Careful-state probabilities would become negative.
        with pytest.raises(ValueError):
            CommonCauseDevelopmentProcess(model, bad_day_weight=0.6, inflation=2.0)


class TestCopulaProcess:
    def test_zero_correlation_matches_independence(self, model: FaultModel):
        process = CopulaDevelopmentProcess(model, correlation=0.0)
        matrix = process.sample_fault_matrix(np.random.default_rng(4), 100_000)
        np.testing.assert_allclose(matrix.mean(axis=0), model.p, atol=0.01)
        correlation = np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1]
        assert abs(correlation) < 0.02

    def test_marginals_preserved_under_correlation(self, model: FaultModel):
        process = CopulaDevelopmentProcess(model, correlation=0.6)
        matrix = process.sample_fault_matrix(np.random.default_rng(5), 100_000)
        np.testing.assert_allclose(matrix.mean(axis=0), model.p, atol=0.01)

    def test_positive_correlation_sign(self, model: FaultModel):
        process = CopulaDevelopmentProcess(model, correlation=0.7)
        matrix = process.sample_fault_matrix(np.random.default_rng(6), 100_000)
        assert np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1] > 0.1

    def test_negative_correlation_sign(self, model: FaultModel):
        process = CopulaDevelopmentProcess(model, correlation=-0.7)
        matrix = process.sample_fault_matrix(np.random.default_rng(7), 100_000)
        assert np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1] < -0.1

    def test_extreme_probabilities_handled_exactly(self):
        model = FaultModel(p=np.array([0.0, 1.0, 0.5]), q=np.array([0.1, 0.1, 0.1]))
        process = CopulaDevelopmentProcess(model, correlation=0.5)
        matrix = process.sample_fault_matrix(np.random.default_rng(8), 1000)
        assert not matrix[:, 0].any()
        assert matrix[:, 1].all()

    def test_rejects_out_of_range_correlation(self, model: FaultModel):
        with pytest.raises(ValueError):
            CopulaDevelopmentProcess(model, correlation=1.0)
        with pytest.raises(ValueError):
            CopulaDevelopmentProcess(model, correlation=-1.0)

    def test_zero_count(self, model: FaultModel):
        process = CopulaDevelopmentProcess(model, correlation=0.3)
        assert process.sample_fault_matrix(np.random.default_rng(9), 0).shape == (0, 3)
