"""Tests for developed versions and version pairs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.versions.version import DevelopedVersion, VersionPair


class TestDevelopedVersion:
    def test_pfd_is_sum_of_present_impacts(self, small_model: FaultModel):
        version = DevelopedVersion(small_model, np.array([True, False, True]))
        assert version.pfd() == pytest.approx(1e-4 + 2e-3)
        assert version.fault_count == 2
        assert version.fault_names == ("alpha", "gamma")
        np.testing.assert_array_equal(version.fault_indices, [0, 2])

    def test_fault_free_version(self, small_model: FaultModel):
        version = DevelopedVersion(small_model, np.zeros(3, dtype=bool))
        assert version.is_fault_free()
        assert version.pfd() == 0.0

    def test_rejects_wrong_length(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            DevelopedVersion(small_model, np.array([True, False]))

    def test_fails_on_membership_matrix(self, small_model: FaultModel):
        version = DevelopedVersion(small_model, np.array([True, False, False]))
        # Three demands; first hits fault 0's region, second hits fault 1's,
        # third hits none.
        membership = np.array(
            [[True, False, False], [False, True, False], [False, False, False]]
        )
        np.testing.assert_array_equal(version.fails_on(membership), [True, False, False])

    def test_fails_on_rejects_wrong_shape(self, small_model: FaultModel):
        version = DevelopedVersion(small_model, np.array([True, False, False]))
        with pytest.raises(ValueError):
            version.fails_on(np.array([[True, False]]))

    def test_common_faults(self, small_model: FaultModel):
        first = DevelopedVersion(small_model, np.array([True, True, False]))
        second = DevelopedVersion(small_model, np.array([False, True, True]))
        np.testing.assert_array_equal(first.common_faults(second), [False, True, False])


class TestVersionPair:
    def test_system_pfd_from_common_faults(self, small_model: FaultModel):
        pair = VersionPair(
            channel_a=DevelopedVersion(small_model, np.array([True, True, False])),
            channel_b=DevelopedVersion(small_model, np.array([True, False, True])),
        )
        assert pair.common_fault_count == 1
        assert pair.system_pfd() == pytest.approx(1e-4)
        assert pair.has_common_fault()

    def test_no_common_fault(self, small_model: FaultModel):
        pair = VersionPair(
            channel_a=DevelopedVersion(small_model, np.array([True, False, False])),
            channel_b=DevelopedVersion(small_model, np.array([False, True, False])),
        )
        assert pair.system_pfd() == 0.0
        assert not pair.has_common_fault()

    def test_system_fails_only_when_both_fail(self, small_model: FaultModel):
        pair = VersionPair(
            channel_a=DevelopedVersion(small_model, np.array([True, False, False])),
            channel_b=DevelopedVersion(small_model, np.array([False, True, False])),
        )
        # Demand 0 hits fault 0 only, demand 1 hits fault 1 only, demand 2 hits
        # both faults' regions.
        membership = np.array(
            [[True, False, False], [False, True, False], [True, True, False]]
        )
        np.testing.assert_array_equal(pair.system_fails_on(membership), [False, False, True])

    def test_rejects_mismatched_models(self, small_model: FaultModel):
        other = FaultModel(p=np.array([0.1]), q=np.array([0.1]))
        with pytest.raises(ValueError):
            VersionPair(
                channel_a=DevelopedVersion(small_model, np.array([True, False, False])),
                channel_b=DevelopedVersion(other, np.array([True])),
            )
