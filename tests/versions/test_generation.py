"""Tests for the independent development process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import single_version_mean, two_version_mean
from repro.core.no_common_faults import prob_any_fault
from repro.versions.generation import IndependentDevelopmentProcess


class TestSampling:
    def test_fault_matrix_shape(self, small_model: FaultModel, rng):
        process = IndependentDevelopmentProcess(small_model)
        matrix = process.sample_fault_matrix(rng, 7)
        assert matrix.shape == (7, 3)
        assert matrix.dtype == bool

    def test_zero_count(self, small_model: FaultModel, rng):
        process = IndependentDevelopmentProcess(small_model)
        assert process.sample_fault_matrix(rng, 0).shape == (0, 3)

    def test_negative_count_rejected(self, small_model: FaultModel, rng):
        process = IndependentDevelopmentProcess(small_model)
        with pytest.raises(ValueError):
            process.sample_fault_matrix(rng, -1)
        with pytest.raises(ValueError):
            process.sample_versions(rng, -1)
        with pytest.raises(ValueError):
            process.sample_pairs(rng, -1)

    def test_fault_frequencies_match_probabilities(self, rng):
        model = FaultModel(p=np.array([0.8, 0.3, 0.05]), q=np.array([0.1, 0.1, 0.1]))
        process = IndependentDevelopmentProcess(model)
        matrix = process.sample_fault_matrix(rng, 50_000)
        np.testing.assert_allclose(matrix.mean(axis=0), model.p, atol=0.01)

    def test_sample_version_objects(self, small_model: FaultModel, rng):
        process = IndependentDevelopmentProcess(small_model)
        version = process.sample_version(rng)
        assert version.model is small_model
        versions = process.sample_versions(rng, 5)
        assert len(versions) == 5

    def test_sample_pair_and_pairs(self, small_model: FaultModel, rng):
        process = IndependentDevelopmentProcess(small_model)
        pair = process.sample_pair(rng)
        assert pair.channel_a.model.n == pair.channel_b.model.n == 3
        pairs = process.sample_pairs(rng, 4)
        assert len(pairs) == 4


class TestStatisticalAgreement:
    def test_single_version_pfd_mean(self, rng):
        model = FaultModel(p=np.array([0.3, 0.2]), q=np.array([0.2, 0.1]))
        process = IndependentDevelopmentProcess(model)
        pfds = process.sample_pfds(rng, 100_000)
        assert pfds.mean() == pytest.approx(single_version_mean(model), rel=0.02)

    def test_system_pfd_mean(self, rng):
        model = FaultModel(p=np.array([0.4, 0.3]), q=np.array([0.2, 0.1]))
        process = IndependentDevelopmentProcess(model)
        pfds = process.sample_system_pfds(rng, 100_000)
        assert pfds.mean() == pytest.approx(two_version_mean(model), rel=0.05)

    def test_fraction_of_faulty_versions(self, rng):
        model = FaultModel(p=np.array([0.2, 0.1, 0.05]), q=np.array([0.1, 0.1, 0.1]))
        process = IndependentDevelopmentProcess(model)
        matrix = process.sample_fault_matrix(rng, 50_000)
        fraction_faulty = np.mean(matrix.any(axis=1))
        assert fraction_faulty == pytest.approx(prob_any_fault(model), abs=0.01)

    def test_reproducibility_with_same_seed(self, small_model: FaultModel):
        process = IndependentDevelopmentProcess(small_model)
        first = process.sample_fault_matrix(np.random.default_rng(9), 100)
        second = process.sample_fault_matrix(np.random.default_rng(9), 100)
        np.testing.assert_array_equal(first, second)
