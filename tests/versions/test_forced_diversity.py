"""Tests for the forced-diversity extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.core.moments import two_version_mean
from repro.versions.forced_diversity import ForcedDiversityPair


@pytest.fixture
def channel_models() -> tuple[FaultModel, FaultModel]:
    q = np.array([1e-3, 2e-3, 5e-4])
    channel_a = FaultModel(p=np.array([0.05, 0.02, 0.1]), q=q)
    channel_b = FaultModel(p=np.array([0.01, 0.08, 0.02]), q=q)
    return channel_a, channel_b


class TestConstruction:
    def test_rejects_different_fault_populations(self, channel_models):
        channel_a, _ = channel_models
        other = FaultModel(p=np.array([0.1]), q=np.array([0.1]))
        with pytest.raises(ValueError):
            ForcedDiversityPair(channel_a, other)

    def test_rejects_different_q_vectors(self, channel_models):
        channel_a, channel_b = channel_models
        modified = FaultModel(p=channel_b.p, q=channel_b.q * 2)
        with pytest.raises(ValueError):
            ForcedDiversityPair(channel_a, modified)


class TestAnalytics:
    def test_common_fault_probabilities(self, channel_models):
        channel_a, channel_b = channel_models
        pair = ForcedDiversityPair(channel_a, channel_b)
        np.testing.assert_allclose(pair.common_fault_probabilities(), channel_a.p * channel_b.p)

    def test_mean_system_pfd_formula(self, channel_models):
        channel_a, channel_b = channel_models
        pair = ForcedDiversityPair(channel_a, channel_b)
        expected = float(np.sum(channel_a.p * channel_b.p * channel_a.q))
        assert pair.mean_system_pfd() == pytest.approx(expected)

    def test_symmetric_case_reduces_to_core_model(self, small_model: FaultModel):
        pair = ForcedDiversityPair(small_model, small_model)
        assert pair.mean_system_pfd() == pytest.approx(two_version_mean(small_model))

    def test_prob_no_common_fault(self, channel_models):
        channel_a, channel_b = channel_models
        pair = ForcedDiversityPair(channel_a, channel_b)
        expected = float(np.prod(1 - channel_a.p * channel_b.p))
        assert pair.prob_no_common_fault() == pytest.approx(expected)
        assert pair.prob_any_common_fault() == pytest.approx(1 - expected)

    def test_channel_means_and_gain(self, channel_models):
        channel_a, channel_b = channel_models
        pair = ForcedDiversityPair(channel_a, channel_b)
        mean_a, mean_b = pair.mean_channel_pfds()
        assert mean_a == pytest.approx(float(np.sum(channel_a.p * channel_a.q)))
        assert mean_b == pytest.approx(float(np.sum(channel_b.p * channel_b.q)))
        assert pair.mean_gain_over_best_channel() <= 1.0

    def test_as_symmetric_model_preserves_system_quantities(self, channel_models):
        channel_a, channel_b = channel_models
        pair = ForcedDiversityPair(channel_a, channel_b)
        symmetric = pair.as_symmetric_model()
        assert two_version_mean(symmetric) == pytest.approx(pair.mean_system_pfd())

    def test_variance_and_std(self, channel_models):
        channel_a, channel_b = channel_models
        pair = ForcedDiversityPair(channel_a, channel_b)
        common = channel_a.p * channel_b.p
        expected_variance = float(np.sum(common * (1 - common) * channel_a.q**2))
        assert pair.variance_system_pfd() == pytest.approx(expected_variance)
        assert pair.std_system_pfd() == pytest.approx(np.sqrt(expected_variance))


class TestSimulation:
    def test_sampled_mean_matches_analytic(self, channel_models):
        channel_a, channel_b = channel_models
        # Use larger probabilities so the Monte Carlo comparison converges fast.
        boosted_a = FaultModel(p=channel_a.p * 5, q=channel_a.q)
        boosted_b = FaultModel(p=channel_b.p * 5, q=channel_b.q)
        pair = ForcedDiversityPair(boosted_a, boosted_b)
        samples = pair.sample_system_pfds(np.random.default_rng(10), 200_000)
        assert samples.mean() == pytest.approx(pair.mean_system_pfd(), rel=0.1)

    def test_sample_pair_object(self, channel_models):
        pair = ForcedDiversityPair(*channel_models)
        version_pair = pair.sample_pair(np.random.default_rng(11))
        assert version_pair.channel_a.model.n == 3

    def test_sample_rejects_negative_count(self, channel_models):
        pair = ForcedDiversityPair(*channel_models)
        with pytest.raises(ValueError):
            pair.sample_system_pfds(np.random.default_rng(0), -1)
