"""Tests for confidence claims."""

from __future__ import annotations

import pytest

from repro.assessment.confidence import ConfidenceClaim, claim_from_system
from repro.core.system import OneOutOfTwoSystem, SingleVersionSystem


class TestConfidenceClaim:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceClaim(bound=-0.1, confidence=0.9, method="x")
        with pytest.raises(ValueError):
            ConfidenceClaim(bound=0.1, confidence=1.5, method="x")

    def test_satisfies(self):
        claim = ConfidenceClaim(bound=1e-3, confidence=0.99, method="normal-approximation")
        assert claim.satisfies(1e-2)
        assert not claim.satisfies(1e-4)

    def test_describe_contains_numbers(self):
        claim = ConfidenceClaim(bound=1e-3, confidence=0.99, method="normal-approximation")
        text = claim.describe()
        assert "0.99" in text and "normal-approximation" in text


class TestClaimFromSystem:
    def test_normal_method(self, small_model):
        system = SingleVersionSystem(small_model)
        claim = claim_from_system(system, 0.99)
        assert claim.method == "normal-approximation"
        assert claim.bound == pytest.approx(system.normal_bound(0.99))

    def test_exact_method(self, small_model):
        system = SingleVersionSystem(small_model)
        claim = claim_from_system(system, 0.99, method="exact-distribution")
        assert claim.bound == pytest.approx(system.exact_bound(0.99))

    def test_two_version_claim_tighter(self, small_model):
        single_claim = claim_from_system(SingleVersionSystem(small_model), 0.99)
        pair_claim = claim_from_system(OneOutOfTwoSystem(small_model), 0.99)
        assert pair_claim.bound <= single_claim.bound

    def test_unknown_method_rejected(self, small_model):
        with pytest.raises(ValueError):
            claim_from_system(SingleVersionSystem(small_model), 0.99, method="guesswork")
