"""Tests for the beta-factor view."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assessment.beta_factor import (
    beta_factor,
    guaranteed_beta_factor,
    guaranteed_bound_beta_factor,
)
from repro.core.fault_model import FaultModel
from repro.core.moments import single_version_mean, two_version_mean


class TestBetaFactor:
    def test_definition(self, small_model: FaultModel):
        assert beta_factor(small_model) == pytest.approx(
            two_version_mean(small_model) / single_version_mean(small_model)
        )

    def test_never_exceeds_guaranteed_value(self, small_model, random_model, homogeneous_model):
        for model in (small_model, random_model, homogeneous_model):
            assert beta_factor(model) <= guaranteed_beta_factor(model.p_max) + 1e-12

    def test_degenerate_model(self):
        model = FaultModel(p=np.array([0.0]), q=np.array([0.1]))
        assert beta_factor(model) == 1.0


class TestGuaranteedFactors:
    def test_guaranteed_beta_is_pmax(self):
        assert guaranteed_beta_factor(0.1) == 0.1

    def test_guaranteed_bound_factor_paper_values(self):
        assert guaranteed_bound_beta_factor(0.5) == pytest.approx(0.866, abs=5e-4)
        assert guaranteed_bound_beta_factor(0.1) == pytest.approx(0.332, abs=5e-4)
        assert guaranteed_bound_beta_factor(0.01) == pytest.approx(0.100, abs=5e-4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            guaranteed_beta_factor(1.1)
