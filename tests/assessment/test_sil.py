"""Tests for SIL banding."""

from __future__ import annotations

import pytest

from repro.assessment.sil import (
    SafetyIntegrityLevel,
    required_pfd_bound,
    sil_claim_for_system,
    sil_for_pfd,
)
from repro.core.system import OneOutOfTwoSystem, SingleVersionSystem


class TestSilForPfd:
    @pytest.mark.parametrize(
        "pfd, expected",
        [
            (0.5, SafetyIntegrityLevel.NONE),
            (0.1, SafetyIntegrityLevel.NONE),
            (0.05, SafetyIntegrityLevel.SIL1),
            (5e-3, SafetyIntegrityLevel.SIL2),
            (5e-4, SafetyIntegrityLevel.SIL3),
            (5e-5, SafetyIntegrityLevel.SIL4),
            (1e-7, SafetyIntegrityLevel.SIL4),
        ],
    )
    def test_banding(self, pfd, expected):
        assert sil_for_pfd(pfd) == expected

    def test_band_edges(self):
        assert sil_for_pfd(1e-2) == SafetyIntegrityLevel.SIL1
        assert sil_for_pfd(1e-3) == SafetyIntegrityLevel.SIL2
        assert sil_for_pfd(1e-4) == SafetyIntegrityLevel.SIL3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sil_for_pfd(-1e-3)


class TestRequiredBound:
    def test_bounds(self):
        assert required_pfd_bound(SafetyIntegrityLevel.SIL1) == 1e-1
        assert required_pfd_bound(SafetyIntegrityLevel.SIL4) == 1e-4
        assert required_pfd_bound(SafetyIntegrityLevel.NONE) == 1.0

    def test_consistency_with_banding(self):
        for level in (
            SafetyIntegrityLevel.SIL1,
            SafetyIntegrityLevel.SIL2,
            SafetyIntegrityLevel.SIL3,
            SafetyIntegrityLevel.SIL4,
        ):
            just_inside = required_pfd_bound(level) * 0.99
            assert sil_for_pfd(just_inside) >= level


class TestSilClaim:
    def test_two_version_claim_at_least_as_good(self, small_model):
        single = sil_claim_for_system(SingleVersionSystem(small_model), 0.99)
        pair = sil_claim_for_system(OneOutOfTwoSystem(small_model), 0.99)
        assert pair.level >= single.level
        assert "supported by" in pair.describe()

    def test_claim_uses_requested_method(self, small_model):
        claim = sil_claim_for_system(
            SingleVersionSystem(small_model), 0.99, method="exact-distribution"
        )
        assert claim.confidence_claim.method == "exact-distribution"
