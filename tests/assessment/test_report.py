"""Tests for the assessment report."""

from __future__ import annotations

import json

import pytest

from repro.assessment.report import assess
from repro.core.fault_model import FaultModel
from repro.core.moments import single_version_mean, two_version_mean


class TestAssess:
    def test_report_values_match_model(self, small_model: FaultModel):
        report = assess(small_model, confidence=0.99)
        assert report.single.mean_pfd == pytest.approx(single_version_mean(small_model))
        assert report.pair.mean_pfd == pytest.approx(two_version_mean(small_model))
        assert report.single.exact_claim.confidence == 0.99
        assert report.pair.exact_claim.bound <= report.single.exact_claim.bound
        assert report.pair.sil >= report.single.sil

    def test_rejects_bad_confidence(self, small_model: FaultModel):
        with pytest.raises(ValueError):
            assess(small_model, confidence=0.0)

    def test_render_contains_key_sections(self, small_model: FaultModel):
        text = assess(small_model).render()
        assert "Single version" in text
        assert "1-out-of-2 diverse system" in text
        assert "Gain from diversity" in text
        assert "eq. 10" in text

    def test_to_dict_is_json_serialisable(self, small_model: FaultModel):
        data = assess(small_model).to_dict()
        encoded = json.dumps(data)
        decoded = json.loads(encoded)
        assert decoded["fault_count"] == small_model.n
        assert decoded["p_max"] == pytest.approx(small_model.p_max)
        assert set(decoded["single_version"]) == set(decoded["one_out_of_two"])
        assert decoded["gain"]["risk_ratio"] <= 1.0

    def test_guaranteed_bounds_present_and_respected(self, small_model: FaultModel):
        data = assess(small_model).to_dict()
        assert data["beta_factor"] <= data["guaranteed_beta_factor"] + 1e-12
        assert data["gain"]["bound_ratio"] <= data["guaranteed_bound_reduction"] + 1e-12

    def test_system_assessment_lines(self, small_model: FaultModel):
        report = assess(small_model)
        lines = report.single.lines()
        assert lines[0].startswith("Single version")
        assert any("supportable SIL" in line for line in lines)
