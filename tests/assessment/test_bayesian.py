"""Tests for the Bayesian assessment module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assessment.bayesian import BayesianPfdAssessment
from repro.core.fault_model import FaultModel
from repro.core.moments import two_version_mean
from repro.stats.discrete import DiscreteDistribution


@pytest.fixture
def assessment(small_model: FaultModel) -> BayesianPfdAssessment:
    return BayesianPfdAssessment.from_model(small_model, versions=2)


class TestPrior:
    def test_prior_mean_matches_model(self, small_model, assessment):
        assert assessment.prior.mean() == pytest.approx(two_version_mean(small_model))

    def test_posterior_with_no_evidence_is_prior(self, assessment):
        posterior = assessment.posterior(0)
        np.testing.assert_allclose(posterior.support, assessment.prior.support)
        np.testing.assert_allclose(posterior.probabilities, assessment.prior.probabilities)


class TestFailureFreeEvidence:
    def test_posterior_mean_decreases_with_evidence(self, assessment):
        means = [assessment.posterior_mean(demands) for demands in (0, 100, 10_000, 1_000_000)]
        assert all(earlier >= later for earlier, later in zip(means, means[1:]))

    def test_posterior_bound_decreases_with_evidence(self, assessment):
        bounds = [assessment.posterior_bound(0.99, demands) for demands in (0, 10_000, 1_000_000)]
        assert all(earlier >= later for earlier, later in zip(bounds, bounds[1:]))

    def test_prob_requirement_increases_with_evidence(self, assessment):
        requirement = 1e-4
        probabilities = [
            assessment.prob_requirement_met(requirement, demands) for demands in (0, 10_000, 100_000)
        ]
        assert all(earlier <= later for earlier, later in zip(probabilities, probabilities[1:]))

    def test_validation(self, assessment):
        with pytest.raises(ValueError):
            assessment.posterior(-1)
        with pytest.raises(ValueError):
            assessment.posterior(10, failures=11)
        with pytest.raises(ValueError):
            assessment.prob_requirement_met(-0.1, 10)


class TestFailureEvidence:
    def test_observed_failure_shifts_mass_away_from_zero(self, assessment):
        posterior = assessment.posterior(demands=100, failures=1)
        # Having seen a failure, the PFD cannot be 0.
        assert posterior.prob_zero() == pytest.approx(0.0, abs=1e-12)
        assert posterior.mean() > assessment.posterior_mean(100, failures=0)

    def test_incompatible_evidence_raises(self):
        # A prior concentrated on PFD = 0 cannot explain an observed failure.
        prior = DiscreteDistribution.point_mass(0.0)
        assessment = BayesianPfdAssessment(prior)
        with pytest.raises(ValueError):
            assessment.posterior(demands=10, failures=1)


class TestDemandsNeeded:
    def test_zero_needed_when_prior_suffices(self, assessment):
        # The prior already puts almost all mass at tiny PFD values, so a lax
        # requirement needs no operational evidence.
        assert assessment.demands_needed_for_confidence(0.5, 0.9) == 0

    def test_monotone_in_confidence(self, assessment):
        lax = assessment.demands_needed_for_confidence(1e-5, 0.9)
        strict = assessment.demands_needed_for_confidence(1e-5, 0.99)
        assert lax is not None and strict is not None
        assert strict >= lax

    def test_posterior_at_returned_demand_count_meets_confidence(self, assessment):
        requirement, confidence = 1e-5, 0.95
        needed = assessment.demands_needed_for_confidence(requirement, confidence)
        assert needed is not None
        assert assessment.prob_requirement_met(requirement, needed) >= confidence
        if needed > 0:
            assert assessment.prob_requirement_met(requirement, needed - 1) < confidence

    def test_unreachable_requirement_returns_none(self):
        # Prior mass sits entirely at a PFD of 0.5, which failure-free demands
        # can never push below the requirement with certainty... but a point
        # prior cannot be updated below itself, so no demand count suffices.
        prior = DiscreteDistribution.point_mass(0.5)
        assessment = BayesianPfdAssessment(prior)
        assert assessment.demands_needed_for_confidence(1e-3, 0.99, max_demands=1000) is None

    def test_rejects_bad_confidence(self, assessment):
        with pytest.raises(ValueError):
            assessment.demands_needed_for_confidence(1e-3, 1.0)
