"""A1 (ablation) -- which gain measure should an assessor look at?

The paper weighs several ways of expressing the gain from diversity and argues
for some over others:

* footnote 5 prefers the *risk* ratio ``P(N2>0)/P(N1>0)`` over the *success*
  ratio ``P(N2=0)/P(N1=0)``, "as these [risks] are intended to be small in the
  first place, so that large changes in the risk ... may appear as small
  changes in the corresponding probability of success";
* Section 5.2 notes that the bound *difference* behaves differently from the
  bound *ratio* under process change.

This ablation sweeps process quality and reports all the candidate measures
side by side, confirming the paper's argument: the success ratio barely moves
(it stays within a few percent of 1) while the risk ratio varies by orders of
magnitude over the same sweep.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.core.fault_model import FaultModel
from repro.core.moments import single_version_mean, two_version_mean
from repro.core.no_common_faults import risk_ratio, success_ratio
from repro.core.normal_approximation import bound_difference, bound_gain_ratio


def test_a1_gain_measure_ablation(benchmark):
    base = FaultModel(
        p=np.array([0.08, 0.05, 0.03, 0.02, 0.01]),
        q=np.array([0.02, 0.05, 0.01, 0.1, 0.03]),
    )
    k_values = (1.0, 0.5, 0.2, 0.1, 0.05)

    def workload():
        rows = []
        for k in k_values:
            model = base.scaled(k)
            rows.append(
                (
                    k,
                    risk_ratio(model),
                    success_ratio(model),
                    two_version_mean(model) / single_version_mean(model),
                    bound_gain_ratio(model, 2.33),
                    bound_difference(model, 2.33),
                )
            )
        return rows

    rows = benchmark(workload)
    print_table(
        "A1: candidate gain measures across process quality k (p_i = k b_i)",
        ["k", "risk ratio (eq.10)", "success ratio (fn.5)", "mean ratio", "bound ratio", "bound difference"],
        [list(row) for row in rows],
    )
    risk_ratios = [row[1] for row in rows]
    success_ratios = [row[2] for row in rows]
    bound_differences = [row[5] for row in rows]
    # The risk ratio spans orders of magnitude across the sweep ...
    assert max(risk_ratios) / min(risk_ratios) > 10.0
    # ... while the success ratio barely moves (always close to 1, and varying
    # far less over the same sweep): the footnote's point that it is an
    # insensitive measure of the gain.
    assert all(1.0 <= value < 1.25 for value in success_ratios)
    assert max(success_ratios) / min(success_ratios) < 1.3
    assert (max(risk_ratios) / min(risk_ratios)) > 10 * (max(success_ratios) / min(success_ratios))
    # Section 5.2: the bound *difference* shrinks as the process improves (the
    # absolute room for improvement vanishes), even though the ratio improves.
    assert all(earlier >= later for earlier, later in zip(bound_differences, bound_differences[1:]))
    # The ratio measures agree on the direction: better process, more gain.
    assert risk_ratios == sorted(risk_ratios, reverse=True)
