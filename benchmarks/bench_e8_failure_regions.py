"""E8 -- Fig. 2: failure regions in a two-dimensional demand space.

The figure shows five failure regions of varied shapes (blobs, a stripe, a
corner box, an array of isolated points) over a two-variable demand space.
The bench reconstructs the layout, computes each region's probability (the
fault's ``q_i``) under both a uniform and a non-uniform operational profile,
checks Monte Carlo estimates against analytic values where those exist, and
confirms the qualitative observations quoted with the figure (regions differ
in size by orders of magnitude; point-array regions are nearly invisible to
uniform sampling).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.demandspace.measure import estimate_region_probability, region_probability
from repro.demandspace.profiles import ProductProfile, TruncatedNormalMarginal
from repro.demandspace.space import ContinuousDemandSpace
from repro.experiments.scenarios import fig2_failure_regions

REGION_NAMES = ("blob 1", "blob 2", "vertical stripe", "corner box", "point array")


def test_e8_region_probabilities(benchmark, bench_rng):
    space = ContinuousDemandSpace.unit_square()
    regions = fig2_failure_regions(space)
    uniform = ProductProfile.uniform(space)
    skewed = ProductProfile(
        space,
        [
            TruncatedNormalMarginal(mean=0.45, std=0.15, lower=0.0, upper=1.0),
            TruncatedNormalMarginal(mean=0.5, std=0.2, lower=0.0, upper=1.0),
        ],
    )

    def workload():
        rows = []
        for name, region in zip(REGION_NAMES, regions):
            uniform_estimate = estimate_region_probability(region, uniform, bench_rng, 60_000)
            skewed_estimate = estimate_region_probability(region, skewed, bench_rng, 60_000)
            analytic = region_probability(region, uniform)
            rows.append((name, uniform_estimate.value, skewed_estimate.value, analytic))
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_table(
        "E8: Fig. 2 failure-region probabilities (q_i) under two profiles",
        ["region", "q (uniform)", "q (skewed)", "q analytic (uniform)"],
        [list(row) for row in rows],
    )
    by_name = {row[0]: row for row in rows}
    # The stripe has an analytic uniform measure of 0.05 * 0.9 = 0.045.
    stripe = by_name["vertical stripe"]
    assert stripe[3] is not None and abs(stripe[1] - stripe[3]) < 0.01
    # The corner box: 0.15 * 0.15 = 0.0225.
    corner = by_name["corner box"]
    assert corner[3] is not None and abs(corner[1] - corner[3]) < 0.01
    # Regions differ in size by orders of magnitude; the point array is nearly
    # invisible ("non-intuitive shapes ... arrays of separate points").
    assert by_name["point array"][1] < 0.01
    assert by_name["blob 2"][1] > by_name["blob 1"][1]
    # The operational profile matters: q_i values change when demands cluster
    # around the middle of the space.
    assert by_name["vertical stripe"][2] > by_name["vertical stripe"][1]
