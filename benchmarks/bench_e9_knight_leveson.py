"""E9 -- Section 7: qualitative check against the Knight-Leveson experiment.

Paper: "we have observed for instance that in the Knight and Leveson
experiment diversity reduced not only the sample mean of the PFD of the 27
program versions produced, but also - greatly - its standard deviation.  At
this strictly qualitative level, our conclusions are supported."

The original data are unavailable, so the bench runs the synthetic 27-version
experiment driven by the fault-creation model (the DESIGN.md substitution) and
checks the same two qualitative statements, plus the stronger "greatly" claim
for the standard deviation.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.experiments.knight_leveson import SyntheticNVersionExperiment
from repro.experiments.scenarios import many_small_faults_scenario


def test_e9_synthetic_knight_leveson(benchmark, bench_rng):
    model = many_small_faults_scenario(n=60)
    experiment = SyntheticNVersionExperiment(model, version_count=27)

    def workload():
        return experiment.run_replicated(30, rng=bench_rng)

    results = benchmark.pedantic(workload, rounds=1, iterations=1)
    mean_reductions = [result.mean_reduction_factor() for result in results]
    std_reductions = [result.std_reduction_factor() for result in results]
    finite_std_reductions = [value for value in std_reductions if np.isfinite(value)]
    rows = [
        ["replications", len(results), ""],
        ["mean reduced by diversity (fraction of runs)",
         float(np.mean([result.diversity_reduced_mean() for result in results])), "paper: yes"],
        ["std reduced by diversity (fraction of runs)",
         float(np.mean([result.diversity_reduced_std() for result in results])), "paper: yes"],
        ["median mean-reduction factor", float(np.median(mean_reductions)), ">= 1"],
        ["median std-reduction factor",
         float(np.median(finite_std_reductions)) if finite_std_reductions else float("inf"),
         "paper: 'greatly'"],
    ]
    print_table("E9: synthetic 27-version Knight-Leveson-style experiment", ["quantity", "value", "paper"], rows)
    # Both qualitative claims hold in essentially every replication.
    assert np.mean([result.diversity_reduced_mean() for result in results]) >= 0.95
    assert np.mean([result.diversity_reduced_std() for result in results]) >= 0.95
    # The standard-deviation reduction is substantial ("greatly"): at least a
    # factor of 2 in the median replication.
    assert np.median(std_reductions) >= 2.0


def test_e9_model_predicts_both_reductions(benchmark):
    """The analytic model itself predicts mean and (larger) std reduction."""
    model = many_small_faults_scenario(n=60)
    experiment = SyntheticNVersionExperiment(model, version_count=27)

    expected = benchmark(experiment.expected_statistics)
    print_table(
        "E9: analytic predictions for the experiment's statistics",
        ["quantity", "single", "pair", "reduction factor"],
        [
            ["mean PFD", expected["single_mean"], expected["pair_mean"],
             expected["single_mean"] / expected["pair_mean"]],
            ["std of PFD", expected["single_std"], expected["pair_std"],
             expected["single_std"] / expected["pair_std"]],
        ],
    )
    assert expected["pair_mean"] < expected["single_mean"]
    assert expected["pair_std"] < expected["single_std"]
