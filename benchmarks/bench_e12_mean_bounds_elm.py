"""E12 -- Section 3.1.1 mean bounds and the EL/LM re-derivation.

Two results are regenerated:

* eq. (4): ``mu_2 <= p_max mu_1`` -- "if an assessor were convinced that a
  developer's quality assurance activities reduce the probability of the most
  common fault to, say, 10%, the assessor should also believe that a
  two-version system from that developer has, on average, at least 10 times
  better PFD than a single version";
* the Section 2.2 remark that the EL/LM conclusion (mean system PFD at least
  the square of the mean version PFD, i.e. worse than the independence claim)
  is "easily re-derived" in this model, including the induced
  difficulty-function view over an explicit demand space.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.core.fault_model import FaultModel
from repro.core.moments import single_version_mean, two_version_mean
from repro.demandspace.profiles import GridProfile
from repro.demandspace.regions import BoxRegion
from repro.demandspace.space import DiscreteDemandSpace
from repro.elm.comparison import compare_fault_model_with_el
from repro.elm.eckhardt_lee import EckhardtLeeModel
from repro.elm.littlewood_miller import LittlewoodMillerModel
from repro.elm.difficulty import DifficultyFunction
from repro.stats.rng import default_rng


def test_e12_mean_bound_sweep(benchmark):
    """Eq. (4) across a sweep of random models, including the 10x example."""
    rng = default_rng(12)
    models = [FaultModel.random(rng, n=20, p_range=(0.001, p_max_target), total_impact=0.5)
              for p_max_target in (0.5, 0.2, 0.1, 0.05, 0.01)]

    def workload():
        rows = []
        for model in models:
            mu_1, mu_2 = single_version_mean(model), two_version_mean(model)
            rows.append((model.p_max, mu_1, mu_2, mu_2 / mu_1, model.p_max))
        return rows

    rows = benchmark(workload)
    print_table(
        "E12: eq. (4) -- actual mean ratio vs the p_max guarantee",
        ["p_max", "mu_1", "mu_2", "mu_2/mu_1", "guaranteed <="],
        [list(row) for row in rows],
    )
    for p_max, mu_1, mu_2, ratio, guarantee in rows:
        assert mu_2 <= p_max * mu_1 + 1e-15
        assert ratio <= guarantee + 1e-12
    # The paper's 10% example: with p_max ~ 0.1 the two-version system is at
    # least 10 times better on average.
    example = rows[2]
    assert example[1] / example[2] >= 10.0 * 0.999


def test_e12_elm_comparison(benchmark):
    """Fault-creation model vs the induced EL difficulty function vs LM forced diversity."""
    space = DiscreteDemandSpace(np.arange(50, dtype=float).reshape(-1, 1))
    profile = GridProfile.uniform(space)
    regions = [
        BoxRegion(np.array([float(5 * i)]), np.array([float(5 * i + 3)])) for i in range(8)
    ]
    model = FaultModel(
        p=np.array([0.2, 0.15, 0.1, 0.08, 0.05, 0.04, 0.02, 0.01]),
        q=np.full(8, 4.0 / 50.0),
    )

    def workload():
        comparison = compare_fault_model_with_el(model, regions, profile)
        # An LM-style forced-diversity pair over the same demand space: team B
        # finds the demands easy exactly where team A finds them hard.
        difficulties_a = np.zeros(50)
        difficulties_b = np.zeros(50)
        for index, region in enumerate(regions):
            membership = region.contains(space.points)
            difficulties_a[membership] = model.p[index]
            difficulties_b[membership] = model.p[::-1][index]
        lm_model = LittlewoodMillerModel(
            DifficultyFunction(profile.probabilities, difficulties_a),
            DifficultyFunction(profile.probabilities, difficulties_b),
        )
        el_model = EckhardtLeeModel(DifficultyFunction(profile.probabilities, difficulties_a))
        return comparison, el_model, lm_model

    comparison, el_model, lm_model = benchmark(workload)
    print_table(
        "E12: fault-creation model vs EL vs independence vs LM forced diversity",
        ["quantity", "value"],
        [
            ["fault model mean single", comparison["fault_model_mean_single"]],
            ["EL mean single", comparison["el_mean_single"]],
            ["fault model mean 1oo2", comparison["fault_model_mean_system"]],
            ["EL mean 1oo2", comparison["el_mean_system"]],
            ["independence prediction", comparison["independence_prediction"]],
            ["EL excess over independence", comparison["el_excess_over_independence"]],
            ["LM (forced diversity) mean 1oo2", lm_model.mean_system_pfd()],
        ],
    )
    # Disjoint regions: the two views coincide.
    assert abs(comparison["fault_model_mean_single"] - comparison["el_mean_single"]) < 1e-12
    assert abs(comparison["fault_model_mean_system"] - comparison["el_mean_system"]) < 1e-12
    # EL/LM re-derivation: the system mean is worse than the independence claim.
    assert comparison["el_mean_system"] >= comparison["independence_prediction"]
    assert el_model.excess_over_independence() >= 0.0
    # Forced (negatively correlated) diversity beats the independence claim.
    assert lm_model.beats_independence()
    assert lm_model.mean_system_pfd() < comparison["el_mean_system"]
