"""Load-generator entry point: drive a live endpoint or a local cluster.

Thin CLI over :mod:`repro.cluster.loadgen`.  Two modes:

* point it at something already running (``--host``/``--port``: a
  ``repro serve`` shard or a ``repro route`` router -- same protocol);
* let it self-host (``--local-shards N``): N single-worker shards plus a
  router are started in-process, loaded, and torn down, so one command
  demonstrates the scale-out path on a laptop.

Prints the phase report as JSON (throughput and p50/p95/p99 latency per
phase, plus cache-tier provenance counts).  Deterministic per ``--seed``.

Usage::

    python benchmarks/loadgen.py --port 8760              # existing endpoint
    python benchmarks/loadgen.py --local-shards 2 --quick # self-hosted demo
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _run_against_local_cluster(shards: int, options: dict) -> dict:
    from repro.cluster import ShardRouter
    from repro.service import EvaluationServer, start_in_background

    handles = []
    try:
        servers = [
            EvaluationServer(workers=1, batch_window_ms=0.0) for _ in range(shards)
        ]
        handles = [start_in_background(server) for server in servers]
        router = ShardRouter([f"127.0.0.1:{handle.port}" for handle in handles])
        with start_in_background(router) as routed:
            from repro.cluster.loadgen import run_loadgen

            record = run_loadgen(port=routed.port, **options)
        record["topology"] = {
            "shards": shards,
            "shard_computed": [
                server.registry["evaluations_computed"] for server in servers
            ],
        }
        return record
    finally:
        for handle in handles:
            handle.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8760)
    parser.add_argument(
        "--local-shards",
        type=int,
        default=0,
        help="self-host N shards behind a router instead of targeting --host/--port",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--distinct", type=int, default=16)
    parser.add_argument("--duplicate-factor", type=int, default=4)
    parser.add_argument("--rate", type=float, default=50.0, help="offered requests/second")
    parser.add_argument("--workers", type=int, default=8, help="concurrent client threads")
    parser.add_argument("--replications", type=int, default=2_000)
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    parser.add_argument(
        "--phases",
        default="cold,warm,duplicates",
        help="comma-separated subset of cold,warm,duplicates",
    )
    arguments = parser.parse_args(argv)

    from repro.cluster.loadgen import run_loadgen

    options = {
        "seed": arguments.seed,
        "distinct": 8 if arguments.quick else arguments.distinct,
        "duplicate_factor": arguments.duplicate_factor,
        "rate": arguments.rate,
        "workers": arguments.workers,
        "replications": 1_000 if arguments.quick else arguments.replications,
        "phases": tuple(phase for phase in arguments.phases.split(",") if phase),
    }
    if arguments.local_shards > 0:
        record = _run_against_local_cluster(arguments.local_shards, options)
    else:
        record = run_loadgen(arguments.host, arguments.port, **options)
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
