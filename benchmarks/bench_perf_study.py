"""PERF -- study runner: cache effectiveness and parallel correctness.

Bench for the declarative study subsystem: a warm cache must eliminate every
evaluation (and be much faster than the cold run), the parallel runner must
produce exactly the sequential records, and editing an axis must recompute
only the new points.  These are the invariants that make a cached study
table trustworthy; throughput numbers land in ``BENCH_perf.json`` via
``benchmarks/run_benchmarks.py``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table
from repro.studies import StudySpec, run_study

STUDY = {
    "name": "bench-study",
    "base": {"scenario": "many-small-faults"},
    "sweep": {
        "grid": [
            {"name": "n", "values": [50, 100, 200]},
            {"name": "p_scale", "logspace": [0.25, 1.0, 4]},
        ]
    },
    "methods": [
        {"name": "moments"},
        {"name": "bounds"},
        {"name": "exact", "max_support": 512},
        {"name": "montecarlo", "replications": 5000},
    ],
    "seed": 20010704,
}


def test_perf_warm_cache_eliminates_all_evaluations(tmp_path, benchmark):
    """Cold run computes every point; warm run computes none, byte-identically."""
    spec = StudySpec.from_dict(STUDY)
    cache_dir = str(tmp_path / "cache")

    start = time.perf_counter()
    cold = run_study(spec, cache_dir=cache_dir, jobs=2)
    cold_seconds = time.perf_counter() - start

    def warm_run():
        return run_study(spec, cache_dir=cache_dir, jobs=2)

    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_start = time.perf_counter()
    run_study(spec, cache_dir=cache_dir, jobs=2)
    warm_seconds = time.perf_counter() - warm_start

    print_table(
        "PERF: study cache (48 points, 4 methods)",
        ["run", "seconds", "computed", "cached"],
        [
            ["cold (jobs=2)", cold_seconds, cold.summary["computed"], cold.summary["cached"]],
            ["warm (jobs=2)", warm_seconds, warm.summary["computed"], warm.summary["cached"]],
        ],
    )
    assert cold.summary["computed"] == spec.point_count
    assert warm.summary["computed"] == 0
    assert warm.records == cold.records


def test_perf_parallel_records_equal_sequential(tmp_path, benchmark):
    """jobs=4 must reproduce the sequential table exactly (content-keyed seeds)."""
    spec = StudySpec.from_dict(STUDY)
    sequential = run_study(spec, cache_dir=None, jobs=1)

    def parallel_run():
        return run_study(spec, cache_dir=None, jobs=4)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    assert parallel.records == sequential.records


def test_perf_axis_edit_is_incremental(tmp_path):
    """Adding one sweep value recomputes only the new points."""
    cache_dir = str(tmp_path / "cache")
    cold = run_study(StudySpec.from_dict(STUDY), cache_dir=cache_dir, jobs=2)
    edited = {**STUDY, "sweep": {"grid": [
        {"name": "n", "values": [50, 100, 200, 400]},
        {"name": "p_scale", "logspace": [0.25, 1.0, 4]},
    ]}}
    incremental = run_study(StudySpec.from_dict(edited), cache_dir=cache_dir, jobs=2)
    assert incremental.summary["cached"] == cold.summary["computed"]
    assert incremental.summary["computed"] == 4 * len(STUDY["methods"])
