"""E10 -- Section 5's caveat: how good is the normal approximation?

The paper uses the central limit theorem to approximate the PFD distribution
but warns that "as this is an asymptotic result, we will not know in practice
how good an approximation it is in a specific case".  This bench quantifies
the approximation error -- exact distribution versus normal approximation
versus Berry-Esseen bound -- across the fault-count regimes, and confirms the
paper's implicit expectation that the approximation is poor in the Section 4
regime (few, unlikely faults) and respectable in the Section 5 regime (many
small faults).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.core.fault_model import FaultModel
from repro.core.normal_approximation import berry_esseen_error, normal_approximation
from repro.core.pfd_distribution import exact_pfd_distribution
from repro.experiments.scenarios import high_quality_scenario, many_small_faults_scenario
from repro.stats.rng import default_rng


def _max_cdf_error(model: FaultModel, versions: int) -> float:
    """Maximum |exact CDF - normal CDF| over a grid of thresholds."""
    exact = exact_pfd_distribution(model, versions, max_support=2048)
    approximation = normal_approximation(model, versions)
    thresholds = np.linspace(0.0, float(model.q.sum()), 400)
    errors = [
        abs(float(exact.cdf(float(t))) - approximation.confidence_of_bound(float(t)))
        for t in thresholds
    ]
    return max(errors)


def test_e10_normal_approximation_accuracy(benchmark):
    scenarios = {
        "Section 4 regime (5 unlikely faults)": high_quality_scenario(),
        "Section 5 regime (200 small faults)": many_small_faults_scenario(n=200),
        "intermediate (50 faults)": FaultModel.random(
            default_rng(3), n=50, p_range=(0.05, 0.3), total_impact=0.6
        ),
    }

    def workload():
        rows = []
        for name, model in scenarios.items():
            rows.append(
                (
                    name,
                    _max_cdf_error(model, 1),
                    berry_esseen_error(model, 1),
                    _max_cdf_error(model, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_table(
        "E10: normal-approximation error for the PFD distribution",
        ["scenario", "max CDF error (1 version)", "Berry-Esseen bound", "max CDF error (1oo2)"],
        [list(row) for row in rows],
    )
    by_name = {row[0]: row for row in rows}
    few = by_name["Section 4 regime (5 unlikely faults)"]
    many = by_name["Section 5 regime (200 small faults)"]
    # The approximation is much better in the many-small-faults regime ...
    assert many[1] < few[1]
    # ... and is actually usable there (max CDF error below ~15%), while in the
    # few-faults regime it is hopeless (error of the order of the large
    # probability mass sitting at PFD = 0, several tens of percent).
    assert many[1] < 0.15
    assert few[1] > 0.3
    # The observed error never exceeds its Berry-Esseen bound (when finite).
    for _, observed, bound, _ in rows:
        if np.isfinite(bound):
            assert observed <= bound + 1e-9


def test_e10_quantile_comparison(benchmark):
    """99% bounds: exact distribution vs normal approximation in the CLT regime."""
    model = many_small_faults_scenario(n=200)

    def workload():
        exact = exact_pfd_distribution(model, 1, max_support=2048).quantile(0.99)
        approximate = normal_approximation(model, 1).bound_for_confidence(0.99)
        return exact, approximate

    exact, approximate = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_table(
        "E10: 99% PFD bound, exact vs normal (200-fault model)",
        ["exact", "normal approximation", "relative difference"],
        [[exact, approximate, abs(exact - approximate) / exact]],
    )
    # The normal bound is in the right ballpark but noticeably optimistic in
    # the far tail (the PFD distribution is right-skewed) -- exactly the
    # paper's caveat that the approximation quality is unknown a priori.
    assert abs(exact - approximate) / exact < 0.25
    assert approximate <= exact
