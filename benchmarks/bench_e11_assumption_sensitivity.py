"""E11 -- Section 6: sensitivity of the predictions to the model assumptions.

Two relaxations are studied:

* **correlated fault introduction** (Section 6.1) -- the copula development
  process preserves every marginal ``p_i`` but correlates the mistakes; the
  bench measures how far the independence-based predictions drift;
* **overlapping failure regions** (Section 6.2) -- the exact PFD is the
  measure of the union of the regions present; the bench measures the
  pessimism of the non-overlap sum.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.core.fault_model import FaultModel
from repro.demandspace.profiles import GridProfile
from repro.demandspace.regions import BoxRegion
from repro.demandspace.space import DiscreteDemandSpace
from repro.sensitivity.overlap import OverlappingRegionModel
from repro.sensitivity.robustness import robustness_report


def test_e11_correlation_sensitivity(benchmark, bench_rng):
    model = FaultModel(
        p=np.array([0.15, 0.1, 0.08, 0.05]),
        q=np.array([0.05, 0.1, 0.02, 0.2]),
    )

    def workload():
        return robustness_report(
            model, correlations=(-0.4, 0.0, 0.4, 0.8), replications=40_000, rng=bench_rng
        )

    report = benchmark.pedantic(workload, rounds=1, iterations=1)
    rows = [
        [
            row["correlation"],
            row["mean_system_predicted"],
            row["mean_system_simulated"],
            row["risk_ratio_predicted"],
            row["risk_ratio_simulated"],
        ]
        for row in report.rows()
    ]
    print_table(
        "E11: independence-based predictions vs correlated development (copula)",
        ["correlation", "mean system (pred)", "mean system (sim)", "risk ratio (pred)", "risk ratio (sim)"],
        rows,
    )
    results = dict(zip(report.correlations, report.results))
    # At zero correlation the independence predictions are accurate.
    assert results[0.0].relative_error("mean_single") < 0.05
    assert results[0.0].relative_error("risk_ratio") < 0.1
    # The single-version *mean* prediction survives any within-version
    # correlation (it only depends on the marginals)...
    for result in report.results:
        assert result.relative_error("mean_single") < 0.05
    # ...but the fault-count-based risk ratio degrades as correlation grows,
    # which is exactly the Section 6.1 warning.
    assert results[0.8].relative_error("risk_single") > results[0.0].relative_error("risk_single")


def test_e11_overlap_pessimism(benchmark, bench_rng):
    space = DiscreteDemandSpace(np.arange(100, dtype=float).reshape(-1, 1))
    profile = GridProfile.uniform(space)
    overlap_fractions = (0.0, 0.25, 0.5, 0.75)

    def build(overlap_fraction: float) -> OverlappingRegionModel:
        width = 20.0
        shift = width * (1.0 - overlap_fraction)
        regions = [
            BoxRegion(np.array([10.0]), np.array([10.0 + width - 1.0])),
            BoxRegion(np.array([10.0 + shift]), np.array([10.0 + shift + width - 1.0])),
        ]
        return OverlappingRegionModel(np.array([0.3, 0.3]), regions, profile)

    def workload():
        rows = []
        for fraction in overlap_fractions:
            result = build(fraction).simulate(replications=30_000, rng=bench_rng)
            rows.append(
                (
                    fraction,
                    result.sum_mean_single,
                    result.union_mean_single,
                    result.single_mean_pessimism,
                    result.system_mean_pessimism,
                )
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_table(
        "E11: pessimism of the non-overlap sum as regions overlap more",
        ["overlap fraction", "sum mean (single)", "union mean (single)", "pessimism (single)", "pessimism (1oo2)"],
        [list(row) for row in rows],
    )
    pessimism = [row[3] for row in rows]
    # No overlap -> no pessimism; more overlap -> more pessimism; and the sum
    # is never optimistic for the single-version mean (Section 6.2's claim).
    assert pessimism[0] == min(pessimism)
    assert pessimism[-1] == max(pessimism)
    assert all(value >= 0.99 for value in pessimism)
