"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_e*.py`` file regenerates one table or figure of the paper (see
DESIGN.md section 3.4 for the experiment index and EXPERIMENTS.md for the
paper-versus-measured record).  Benches assert the *shape* of the paper's
result -- who wins, by roughly what factor, where reversals occur -- and time
the underlying computation with pytest-benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fault_model import FaultModel
from repro.experiments.scenarios import (
    high_quality_scenario,
    many_small_faults_scenario,
    protection_system_scenario,
)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a small aligned table (visible with ``pytest -s``)."""
    widths = [
        max(len(str(header)), max((len(_format(row[i])) for row in rows), default=0))
        for i, header in enumerate(headers)
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)))
    for row in rows:
        print("  ".join(_format(cell).ljust(widths[i]) for i, cell in enumerate(row)))


def _format(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.6g}"
    return str(cell)


@pytest.fixture(scope="session")
def high_quality_model() -> FaultModel:
    """Section 4 regime model shared across benches."""
    return high_quality_scenario()


@pytest.fixture(scope="session")
def many_faults_model() -> FaultModel:
    """Section 5 regime model shared across benches."""
    return many_small_faults_scenario(n=200)


@pytest.fixture(scope="session")
def protection_scenario():
    """The Fig. 1 protection-system scenario shared across benches."""
    return protection_system_scenario(rng=11)


@pytest.fixture
def bench_rng() -> np.random.Generator:
    """Deterministic generator for benchmark workloads."""
    return np.random.default_rng(20010704)
