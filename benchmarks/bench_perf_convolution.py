"""PERF -- fast exact-PFD convolution core.

The specialised two-point kernel plus lattice fold must beat the generic
pairwise-tree convolution by a wide margin while preserving the distribution's
moments.  The seed implementation needed ~38 s at ``n=200, max_support=4096``
and ~373 s at ``n=2000`` (see ``seed_convolution_reference`` in
``BENCH_perf.json``); the fast core runs both in well under a second.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.core.moments import pfd_moments
from repro.core.pfd_distribution import exact_pfd_distribution
from repro.experiments.scenarios import many_small_faults_scenario
from repro.stats.discrete import DiscreteDistribution


def test_perf_fast_convolution_beats_tree(benchmark):
    """>=5x over the generic tree at n=200 (the seed algorithm's shape)."""
    model = many_small_faults_scenario(n=200)
    cap = 1024

    def workload():
        start = time.perf_counter()
        fast = exact_pfd_distribution(model, 1, max_support=cap)
        fast_elapsed = time.perf_counter() - start
        components = [
            DiscreteDistribution.two_point(float(value), float(probability))
            for value, probability in zip(model.q, model.p)
        ]
        start = time.perf_counter()
        tree = DiscreteDistribution.convolve_many(components, max_support=cap)
        tree_elapsed = time.perf_counter() - start
        return fast, tree, fast_elapsed, tree_elapsed

    fast, tree, fast_elapsed, tree_elapsed = benchmark.pedantic(workload, rounds=1, iterations=1)
    speedup = tree_elapsed / fast_elapsed
    print_table(
        "PERF: fast convolution core vs generic tree (n=200, max_support=1024)",
        ["algorithm", "seconds", "mean", "std"],
        [
            ["fast two-point fold", fast_elapsed, fast.mean(), fast.std()],
            ["generic pairwise tree", tree_elapsed, tree.mean(), tree.std()],
            ["speedup", speedup, "", ""],
        ],
    )
    moments = pfd_moments(model, 1)
    assert fast.mean() == pytest.approx(moments.mean, rel=1e-12)
    assert fast.std() == pytest.approx(moments.std, rel=1e-2)
    # The tree baseline here already benefits from this PR's faster kernels;
    # the measured seed implementation was slower still (38 s at cap=4096).
    assert speedup >= 5.0


def test_perf_convolution_scales_to_thousands(benchmark):
    """n=2000 and n=5000 run in under ~2 s each with moments preserved."""

    def workload():
        rows = []
        for n in (500, 1000, 2000, 5000):
            model = many_small_faults_scenario(n=n)
            start = time.perf_counter()
            distribution = exact_pfd_distribution(model, 1, max_support=4096)
            elapsed = time.perf_counter() - start
            moments = pfd_moments(model, 1)
            rows.append(
                [
                    n,
                    elapsed,
                    abs(distribution.mean() - moments.mean) / moments.mean,
                    abs(distribution.std() - moments.std) / moments.std,
                ]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_table(
        "PERF: exact PFD distribution at scale (max_support=4096)",
        ["n", "seconds", "mean rel err", "std rel err"],
        rows,
    )
    for n, elapsed, mean_error, std_error in rows:
        assert elapsed < 10.0, f"n={n} took {elapsed:.1f}s"
        assert mean_error < 1e-12
        assert std_error < 1e-2
