"""E2 -- Section 5.1 worked example.

Paper: "if we know that mu1 = 0.01 and sigma1 = 0.001, and we are interested in
an 84% confidence bound (k = 1), this is 0.011 for one version; for a
two-version system, even with pmax as high as 0.1, our upper bound is 0.001
(an improvement by an order of magnitude) if we use our first formula above,
but a more modest 0.004 if we use the second formula."
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.core.normal_approximation import worked_example_bounds


def test_e2_worked_example(benchmark):
    example = benchmark(worked_example_bounds, 0.01, 0.001, 0.1, 1.0)
    print_table(
        "E2: Section 5.1 worked example (mu1=0.01, sigma1=0.001, pmax=0.1, k=1)",
        ["quantity", "paper", "measured"],
        [
            ["single-version bound", 0.011, example.single_version_bound],
            ["two-version bound, eq. (11)", "~0.001", example.two_version_bound_from_moments],
            ["two-version bound, eq. (12)", "~0.004", example.two_version_bound_from_bound],
        ],
    )
    assert example.single_version_bound == pytest.approx(0.011)
    # Eq. (11): 0.001 + 1 * 0.332 * 0.001 = 0.00133, quoted as "0.001 (an
    # improvement by an order of magnitude)".
    assert example.two_version_bound_from_moments == pytest.approx(0.00133, abs=5e-5)
    assert example.improvement_from_moments > 8.0
    # Eq. (12): 0.332 * 0.011 = 0.00365, quoted as "a more modest 0.004".
    assert example.two_version_bound_from_bound == pytest.approx(0.004, abs=4e-4)
    # Ordering: the moment-based bound is the tighter of the two.
    assert example.two_version_bound_from_moments < example.two_version_bound_from_bound
