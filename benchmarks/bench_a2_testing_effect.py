"""A2 (ablation) -- effect of pre-release testing on the gain from diversity.

Section 4.2.3 cites Djambazov & Popov (ISSRE'95) for the observation that fault
removal (testing) can reduce the reliability gain given by fault tolerance.
This ablation realises that mechanism inside the fault-creation model: a
testing campaign detects faults in proportion to their failure-region size, so
it is a *non-proportional* improvement of the ``p_i`` and the Appendix A
reversal applies.  The bench traces reliability and the eq. (10) gain as
testing effort grows and asserts the paper-shaped outcome: reliability
improves monotonically while the diversity gain eventually deteriorates.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.core.fault_model import FaultModel
from repro.improvement.testing import TestingCampaign


def test_a2_testing_effect_on_gain(benchmark):
    # Easy-to-find faults (large regions) are the *less* probable mistakes;
    # the most probable mistake has a tiny failure region that testing hardly
    # ever exercises -- the configuration in which fault removal erodes the
    # relative advantage of the two-channel system.
    model = FaultModel(
        p=np.array([0.05, 0.08, 0.25]),
        q=np.array([0.03, 0.004, 2e-5]),
    )
    schedule = [0, 30, 100, 300, 1_000, 3_000]

    def workload():
        return TestingCampaign(model).trajectory(schedule)

    trajectory = benchmark(workload)
    print_table(
        "A2: testing effort vs reliability and diversity gain",
        ["test demands", "single mean PFD", "1oo2 mean PFD", "risk ratio (eq.10)", "99% bound ratio"],
        [
            [row["test_demands"], row["single_mean_pfd"], row["system_mean_pfd"],
             row["risk_ratio"], row["bound_ratio"]]
            for row in trajectory.rows()
        ],
    )
    # Reliability of the released single version improves monotonically with testing ...
    assert trajectory.reliability_always_improves()
    # ... and so does the absolute reliability of the 1-out-of-2 system ...
    assert bool(np.all(np.diff(trajectory.system_means) <= 1e-15))
    # ... but the *relative* gain from diversity does not: past some testing
    # effort the eq. (10) ratio turns upwards (the reference-[13] observation).
    assert not trajectory.gain_is_monotone()
    assert trajectory.risk_ratios[-1] > np.min(trajectory.risk_ratios)


def test_a2_homogeneous_regions_control_case(benchmark):
    """Control: equal region sizes make testing a proportional improvement (Appendix B)."""
    model = FaultModel(p=np.array([0.3, 0.2, 0.1, 0.05]), q=np.full(4, 0.01))
    schedule = [0, 10, 100, 1_000]

    def workload():
        return TestingCampaign(model).trajectory(schedule)

    trajectory = benchmark(workload)
    print_table(
        "A2 control: homogeneous regions -> testing is proportional -> gain monotone",
        ["test demands", "risk ratio"],
        [[row["test_demands"], row["risk_ratio"]] for row in trajectory.rows()],
    )
    assert trajectory.reliability_always_improves()
    assert trajectory.gain_is_monotone()
