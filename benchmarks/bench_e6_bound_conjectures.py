"""E6 -- Section 5.2: numerical conjectures about bounds under process improvement.

The paper conjectures (without proof, "based on numerical solutions of special
cases") that under the normal approximation:

* the bound-ratio gain improves with proportional process improvement;
* it may increase or decrease when only one ``p_i`` changes;
* measured as a *difference* of bounds, the gain improves with any increase in
  any ``p_i``.

This bench reproduces those numerical studies.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.core.fault_model import FaultModel
from repro.core.normal_approximation import (
    bound_difference,
    bound_ratio_proportional_sweep,
    bound_ratio_single_fault_sweep,
)

K_FACTOR = 2.33  # the paper's 99% confidence bound


def test_e6_proportional_bound_ratio_monotone(benchmark, many_faults_model):
    k_values = np.linspace(0.05, 1.0, 39)

    def workload():
        return bound_ratio_proportional_sweep(many_faults_model, k_values, K_FACTOR)

    sweep = benchmark(workload)
    rows = [
        [float(k_values[i]), float(sweep.bound_ratios[i])] for i in range(0, len(k_values), 6)
    ]
    print_table("E6: bound ratio vs proportional quality factor k", ["k", "bound ratio"], rows)
    assert sweep.ratio_is_monotone_nondecreasing(atol=1e-10)


def test_e6_single_fault_bound_ratio_can_reverse(benchmark):
    model = FaultModel(p=np.array([0.3, 0.6]), q=np.array([0.05, 0.05]))
    values = np.linspace(0.01, 0.99, 99)

    def workload():
        return bound_ratio_single_fault_sweep(model, 0, values, K_FACTOR)

    sweep = benchmark(workload)
    minimiser = float(values[int(np.argmin(sweep.bound_ratios))])
    print_table(
        "E6: bound ratio vs a single p1 (p2 = 0.6): non-monotone",
        ["p1 at minimum ratio", "ratio at minimum", "ratio at p1=0.01", "ratio at p1=0.99"],
        [
            [
                minimiser,
                float(np.min(sweep.bound_ratios)),
                float(sweep.bound_ratios[0]),
                float(sweep.bound_ratios[-1]),
            ]
        ],
    )
    # The conjecture: the single-fault improvement can either increase or
    # decrease the gain -- i.e. the sweep is not monotone.
    assert not sweep.ratio_is_monotone_nondecreasing()
    assert 0.01 < minimiser < 0.99


def test_e6_bound_difference_increases_with_any_p(benchmark, high_quality_model):
    def workload():
        results = []
        for index in range(high_quality_model.n):
            original = bound_difference(high_quality_model, K_FACTOR)
            increased_model = high_quality_model.with_probability(
                index, min(high_quality_model.p[index] * 2.0, 1.0)
            )
            increased = bound_difference(increased_model, K_FACTOR)
            results.append((index, original, increased))
        return results

    results = benchmark(workload)
    print_table(
        "E6: bound difference before/after doubling each p_i",
        ["fault index", "difference before", "difference after"],
        [list(row) for row in results],
    )
    for _, before, after in results:
        assert after > before
