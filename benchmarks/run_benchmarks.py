"""Throughput benchmark entry point: emits a ``BENCH_perf.json`` record.

Runs the performance-critical workloads (chunked/streaming Monte Carlo for
single versions, paired 1-out-of-2 systems and 1-out-of-r systems, plus the
fast exact-PFD convolution core) and writes one JSON record with
replications-per-second, wall time and peak RSS per workload, so future
changes have a perf trajectory to regress against.

Each workload runs in its *own subprocess*: peak RSS (``ru_maxrss``) is a
process-wide high-water mark, so isolating workloads is the only way to
attribute memory honestly.

Usage::

    python benchmarks/run_benchmarks.py               # full record -> BENCH_perf.json
    python benchmarks/run_benchmarks.py --quick       # smaller sizes (CI-friendly)
    python benchmarks/run_benchmarks.py --quick --check   # CI gate: fail on regressions
    python benchmarks/run_benchmarks.py --output path/to/record.json

``--workload NAME --json`` is the internal per-subprocess mode.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Timing of the *seed* (pre-fast-core) implementation of
#: ``exact_pfd_distribution``, measured once on seed commit 2ed04c8 on this
#: container class; kept as the fixed reference the fast core is compared
#: against (re-running the seed algorithm at n=2000 takes >6 minutes, which
#: is the point).
SEED_CONVOLUTION_REFERENCE = [
    {"n": 200, "max_support": 4096, "seconds": 38.06},
    {"n": 500, "max_support": 1024, "seconds": 3.33},
    {"n": 2000, "max_support": 4096, "seconds": 373.06},
]


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


# --------------------------------------------------------------------- #
# Workloads (each runs in a fresh subprocess)
# --------------------------------------------------------------------- #
def workload_single(quick: bool) -> dict:
    """Streaming single-version throughput on the n=200 scenario."""
    from repro.experiments.scenarios import many_small_faults_scenario
    from repro.montecarlo.engine import MonteCarloEngine

    replications = 500_000 if quick else 2_000_000
    engine = MonteCarloEngine(many_small_faults_scenario(n=200), chunk_size=100_000)
    start = time.perf_counter()
    result = engine.simulate_single_streaming(replications, rng=7)
    elapsed = time.perf_counter() - start
    return {
        "replications": replications,
        "n": 200,
        "chunk_size": 100_000,
        "seconds": round(elapsed, 3),
        "replications_per_second": round(replications / elapsed),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "mean_pfd": result.mean_pfd(),
    }


def workload_paired(quick: bool) -> dict:
    """Chunked ``simulate_paired`` (full sample collection) on the n=200 scenario.

    The full (non-quick) size is the acceptance workload: 10M replications at
    n=200 must fit a ~500 MB peak-RSS budget; the in-memory path would need
    three ``(10M, 200)`` float64 uniform matrices (~48 GB transient, >30 GB
    at once).
    """
    from repro.experiments.scenarios import many_small_faults_scenario
    from repro.montecarlo.engine import MonteCarloEngine

    replications = 1_000_000 if quick else 10_000_000
    engine = MonteCarloEngine(many_small_faults_scenario(n=200), chunk_size=25_000)
    start = time.perf_counter()
    result = engine.simulate_paired(replications, rng=7)
    elapsed = time.perf_counter() - start
    return {
        "replications": replications,
        "n": 200,
        "chunk_size": 25_000,
        "seconds": round(elapsed, 3),
        "replications_per_second": round(replications / elapsed),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "risk_ratio": result.risk_ratio(),
    }


def workload_paired_streaming(quick: bool) -> dict:
    """Constant-memory streaming variant of the paired workload.

    Runs at the same chunk size as :func:`workload_paired` so the two
    numbers isolate the streaming-vs-sample-collection difference (the
    ``--check`` gate compares their throughputs); chunk size itself is a
    separate memory knob.
    """
    from repro.experiments.scenarios import many_small_faults_scenario
    from repro.montecarlo.engine import MonteCarloEngine

    replications = 1_000_000 if quick else 10_000_000
    engine = MonteCarloEngine(many_small_faults_scenario(n=200), chunk_size=25_000)
    start = time.perf_counter()
    result = engine.simulate_paired_streaming(replications, rng=7)
    elapsed = time.perf_counter() - start
    return {
        "replications": replications,
        "n": 200,
        "chunk_size": 25_000,
        "seconds": round(elapsed, 3),
        "replications_per_second": round(replications / elapsed),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "risk_ratio": result.risk_ratio(),
    }


def workload_one_out_of_r(quick: bool) -> dict:
    """Streaming 1-out-of-3 system throughput on the n=200 scenario."""
    from repro.experiments.scenarios import many_small_faults_scenario
    from repro.montecarlo.engine import MonteCarloEngine

    replications = 500_000 if quick else 2_000_000
    engine = MonteCarloEngine(many_small_faults_scenario(n=200), chunk_size=100_000)
    start = time.perf_counter()
    result = engine.simulate_systems_streaming(replications, versions=3, rng=7)
    elapsed = time.perf_counter() - start
    return {
        "replications": replications,
        "versions": 3,
        "n": 200,
        "chunk_size": 100_000,
        "seconds": round(elapsed, 3),
        "replications_per_second": round(replications / elapsed),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "mean_pfd": result.mean_pfd(),
    }


def workload_parallel(quick: bool) -> dict:
    """Process-parallel streaming paired throughput (jobs=4)."""
    from repro.experiments.scenarios import many_small_faults_scenario
    from repro.montecarlo.engine import MonteCarloEngine

    replications = 1_000_000 if quick else 4_000_000
    engine = MonteCarloEngine(
        many_small_faults_scenario(n=200), chunk_size=100_000, jobs=4
    )
    start = time.perf_counter()
    engine.simulate_paired_streaming(replications, rng=7)
    elapsed = time.perf_counter() - start
    return {
        "replications": replications,
        "n": 200,
        "jobs": 4,
        "chunk_size": 100_000,
        "seconds": round(elapsed, 3),
        "replications_per_second": round(replications / elapsed),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def workload_convolution(quick: bool) -> dict:
    """Fast exact-PFD convolution core across model sizes.

    Also times the tree-based baseline (the seed's algorithm shape, already
    sped up by this PR's kernels) at n=200 so the record contains a measured
    same-process comparison in addition to :data:`SEED_CONVOLUTION_REFERENCE`.
    """
    from repro.core.moments import pfd_moments
    from repro.core.pfd_distribution import exact_pfd_distribution
    from repro.experiments.scenarios import many_small_faults_scenario
    from repro.stats.discrete import DiscreteDistribution

    sizes = [200, 500, 1000, 2000] if quick else [200, 500, 1000, 2000, 5000]
    rows = []
    for n in sizes:
        model = many_small_faults_scenario(n=n)
        start = time.perf_counter()
        distribution = exact_pfd_distribution(model, 1, max_support=4096)
        elapsed = time.perf_counter() - start
        moments = pfd_moments(model, 1)
        rows.append(
            {
                "n": n,
                "max_support": 4096,
                "seconds": round(elapsed, 4),
                "support": int(distribution.support.size),
                "mean_rel_error": abs(distribution.mean() - moments.mean) / moments.mean,
                "std_rel_error": abs(distribution.std() - moments.std) / moments.std,
            }
        )
    fast_path_peak_rss = round(_peak_rss_mb(), 1)
    baseline = None
    if not quick:
        model = many_small_faults_scenario(n=200)
        components = [
            DiscreteDistribution.two_point(float(value), float(probability))
            for value, probability in zip(model.q, model.p)
        ]
        start = time.perf_counter()
        DiscreteDistribution.convolve_many(components, max_support=4096)
        baseline = {
            "algorithm": "pairwise tree (seed shape, current kernels)",
            "n": 200,
            "max_support": 4096,
            "seconds": round(time.perf_counter() - start, 3),
        }
    record = {"fast_path": rows, "peak_rss_mb": fast_path_peak_rss}
    if baseline is not None:
        record["tree_baseline"] = baseline
    return record


def workload_study(quick: bool) -> dict:
    """Declarative study runner: cold (parallel) versus warm (fully cached) pass."""
    import tempfile

    from repro.studies import StudySpec, run_study

    n_values = [50, 100, 200] if quick else [50, 100, 200, 500]
    replications = 5_000 if quick else 50_000
    spec = StudySpec.from_dict(
        {
            "name": "bench-study",
            "base": {"scenario": "many-small-faults"},
            "sweep": {
                "grid": [
                    {"name": "n", "values": n_values},
                    {"name": "p_scale", "logspace": [0.125, 1.0, 5]},
                ]
            },
            "methods": [
                {"name": "moments"},
                {"name": "bounds"},
                {"name": "exact", "max_support": 1024},
                {"name": "montecarlo", "replications": replications},
            ],
            "seed": 20010704,
        }
    )
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = f"{tmp}/cache"
        start = time.perf_counter()
        cold = run_study(spec, cache_dir=cache_dir, jobs=4)
        cold_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_study(spec, cache_dir=cache_dir, jobs=4)
        warm_elapsed = time.perf_counter() - start
    if warm.summary["computed"] != 0 or warm.records != cold.records:
        raise RuntimeError("warm study run failed to reproduce the cold run from cache")
    return {
        "points": cold.summary["points"],
        "evaluations": cold.summary["computed"],
        "jobs": 4,
        "cold_seconds": round(cold_elapsed, 3),
        "warm_seconds": round(warm_elapsed, 4),
        "cold_points_per_second": round(cold.summary["points"] / cold_elapsed, 1),
        "warm_speedup": round(cold_elapsed / warm_elapsed, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def workload_sweep1000(quick: bool) -> dict:
    """1000-point sweep: batched (grouped, shared-demand) versus per-point dispatch.

    One ``p_scale`` axis with 500 values evaluated by ``exact`` and
    ``montecarlo`` (2 x 500 = 1000 points, 100 in quick mode).  The batched
    path folds the whole exact family through one stacked convolution and
    scores every Monte Carlo point against one shared demand stream; the
    ``batch=False`` pass is the old one-task-per-point dispatch over the
    same spec (fresh cache each, jobs=4).
    """
    import tempfile

    from repro.studies import StudySpec, run_study

    points = 50 if quick else 500
    replications = 2_000 if quick else 10_000
    spec = StudySpec.from_dict(
        {
            "name": "bench-sweep1000",
            "base": {"scenario": "many-small-faults"},
            "sweep": {"grid": [{"name": "p_scale", "logspace": [0.05, 1.0, points]}]},
            "methods": [
                {"name": "exact", "max_support": 256},
                {"name": "montecarlo", "replications": replications},
            ],
            "seed": 20010704,
        }
    )
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        batched = run_study(spec, cache_dir=f"{tmp}/batched", jobs=4, batch=True)
        batched_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        scalar = run_study(spec, cache_dir=f"{tmp}/scalar", jobs=4, batch=False)
        scalar_elapsed = time.perf_counter() - start
    if batched.summary["computed"] != scalar.summary["computed"]:
        raise RuntimeError("batched and scalar passes evaluated different point counts")
    return {
        "points": batched.summary["points"],
        "replications": replications,
        "jobs": 4,
        "batched_seconds": round(batched_elapsed, 3),
        "scalar_seconds": round(scalar_elapsed, 3),
        "batched_points_per_second": round(batched.summary["points"] / batched_elapsed, 1),
        "scalar_points_per_second": round(scalar.summary["points"] / scalar_elapsed, 1),
        "speedup": round(scalar_elapsed / batched_elapsed, 1),
        "dispatched_tasks_batched": batched.summary["dispatched_tasks"],
        "dispatched_tasks_scalar": scalar.summary["dispatched_tasks"],
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def workload_service_throughput(quick: bool) -> dict:
    """Evaluation service: micro-batched concurrent serving versus a serial loop.

    A sweep-style workload (one montecarlo point per request across a
    ``p_scale`` axis) fired at a live server three ways: N concurrent
    clients (grouped by the micro-batcher into shared-demand kernel calls),
    the same N requests one at a time (each a lone group taking the scalar
    path -- the serial baseline the ``--check`` gate compares against), and
    the concurrent burst again (warm: answered from the LRU with zero
    recomputation, enforced here).
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.experiments.scenarios import many_small_faults_scenario
    from repro.service import EvaluationServer, ServiceClient, start_in_background

    points = 16 if quick else 32
    replications = 20_000 if quick else 50_000
    window_ms = 25.0
    model = many_small_faults_scenario(n=100)
    scales = [0.1 + 0.9 * index / (points - 1) for index in range(points)]

    def burst(client: ServiceClient, seed: int) -> float:
        def one(scale: float):
            return client.evaluate(
                model,
                "montecarlo",
                options={"replications": replications},
                seed=seed,
                p_scale=scale,
            )

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=points) as pool:
            list(pool.map(one, scales))
        return time.perf_counter() - start

    server = EvaluationServer(batch_window_ms=window_ms, lru_size=4 * points)
    with start_in_background(server) as handle:
        client = ServiceClient(port=handle.port)
        batched_elapsed = burst(client, seed=7)
        after_cold = client.metrics()
        warm_elapsed = burst(client, seed=7)
        after_warm = client.metrics()
    recomputed = after_warm["evaluations_computed"] - after_cold["evaluations_computed"]
    if recomputed != 0:
        raise RuntimeError(f"warm burst recomputed {recomputed} evaluations")
    if after_cold["batched_groups"] < 1:
        raise RuntimeError("concurrent burst produced no batched group")

    # Serial baseline against a fresh server: same requests, one at a time,
    # no cache or grouping carry-over.  Window 0 so lone requests dispatch
    # immediately -- the baseline measures scalar evaluation throughput, not
    # batching-window latency.
    serial_server = EvaluationServer(batch_window_ms=0.0, lru_size=4 * points)
    with start_in_background(serial_server) as handle:
        client = ServiceClient(port=handle.port)
        start = time.perf_counter()
        for scale in scales:
            client.evaluate(
                model,
                "montecarlo",
                options={"replications": replications},
                seed=7,
                p_scale=scale,
            )
        serial_elapsed = time.perf_counter() - start

    return {
        "points": points,
        "replications": replications,
        "batch_window_ms": window_ms,
        "batched_seconds": round(batched_elapsed, 3),
        "serial_seconds": round(serial_elapsed, 3),
        "warm_seconds": round(warm_elapsed, 4),
        "speedup": round(serial_elapsed / batched_elapsed, 1),
        "warm_speedup": round(serial_elapsed / warm_elapsed, 1),
        "batched_requests_per_second": round(points / batched_elapsed, 1),
        "serial_requests_per_second": round(points / serial_elapsed, 1),
        "batched_groups": after_cold["batched_groups"],
        "max_group_size": after_cold["max_group_size"],
        "warm_recomputed": recomputed,
        "warm_cache_hits": after_warm["cache_hits_lru"] - after_cold["cache_hits_lru"],
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def workload_cluster_loadgen(quick: bool) -> dict:
    """Routed 2-shard cluster versus one shard under the open-loop loadgen.

    Every shard gets a single-process worker pool (``workers=1``), so two
    shards behind the router are two real worker processes and the routed
    cold phase measures scale-out compute throughput.  The warm phase re-runs
    the identical schedule through the router and must be answered entirely
    from cache tiers: the gate diffs the shards' ``evaluations_computed``
    across it.  The duplicate-heavy phase stresses coalescing across shards
    and must come back error-free.

    The 1.5x routed-vs-single gate only applies when the machine actually
    has >= 2 CPUs (recorded in the ``cpus`` field); on a single-core runner
    two worker processes time-slice one core and the ratio is meaningless.
    """
    import os

    from repro.cluster import ShardRouter
    from repro.cluster.loadgen import LoadGenerator, build_workload, duplicate_schedule
    from repro.service import EvaluationServer, ServiceClient, start_in_background

    distinct = 8 if quick else 16
    replications = 60_000 if quick else 200_000
    seed = 20010704
    # Offered far above service capacity: the open-loop schedule submits the
    # whole phase immediately and throughput measures compute, not the clock.
    rate = 1_000.0
    payloads = build_workload(seed, distinct, n_faults=100, replications=replications)
    duplicates = duplicate_schedule(seed, payloads, factor=4)

    def drive(port: int, name: str, schedule) -> dict:
        generator = LoadGenerator(port=port, rate=rate, workers=distinct)
        try:
            report = generator.run_phase(name, schedule)
        finally:
            generator.close()
        if report["errors"]:
            raise RuntimeError(f"{name} phase had {report['errors']} errors: {report}")
        return report

    def shard() -> EvaluationServer:
        return EvaluationServer(workers=1, batch_window_ms=0.0, lru_size=4 * distinct)

    with start_in_background(shard()) as handle:
        single_cold = drive(handle.port, "cold", payloads)

    shard_a, shard_b = shard(), shard()
    with start_in_background(shard_a) as ha, start_in_background(shard_b) as hb:
        router = ShardRouter(
            [f"127.0.0.1:{ha.port}", f"127.0.0.1:{hb.port}"], lru_size=4 * distinct
        )
        with start_in_background(router) as routed:
            client = ServiceClient(port=routed.port)
            routed_cold = drive(routed.port, "cold", payloads)
            computed_after_cold = (
                shard_a.registry["evaluations_computed"]
                + shard_b.registry["evaluations_computed"]
            )
            routed_warm = drive(routed.port, "warm", payloads)
            computed_after_warm = (
                shard_a.registry["evaluations_computed"]
                + shard_b.registry["evaluations_computed"]
            )
            routed_duplicates = drive(routed.port, "duplicates", duplicates)
            router_health = client.health()
    warm_recomputed = computed_after_warm - computed_after_cold
    if warm_recomputed != 0:
        raise RuntimeError(f"warm phase recomputed {warm_recomputed} evaluations")
    shard_split = [
        shard_a.registry["evaluations_computed"],
        shard_b.registry["evaluations_computed"],
    ]
    if min(shard_split) == 0:
        raise RuntimeError(f"routing collapsed onto one shard: {shard_split}")
    if any(not state["healthy"] for state in router_health["shards"].values()):
        raise RuntimeError(f"router ejected a shard during the run: {router_health}")
    return {
        "distinct": distinct,
        "replications": replications,
        "cpus": os.cpu_count(),
        "single_cold_rps": single_cold["throughput_rps"],
        "routed_cold_rps": routed_cold["throughput_rps"],
        "routed_speedup": round(
            routed_cold["throughput_rps"] / single_cold["throughput_rps"], 2
        ),
        "warm_rps": routed_warm["throughput_rps"],
        "warm_recomputed": warm_recomputed,
        "warm_served": routed_warm["served"],
        "duplicates_rps": routed_duplicates["throughput_rps"],
        "duplicates_served": routed_duplicates["served"],
        "shard_computed": shard_split,
        "cold_latency_ms": routed_cold["latency_ms"],
        "warm_latency_ms": routed_warm["latency_ms"],
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def workload_chaos_soak(quick: bool) -> dict:
    """Replicated kill-and-restart soak: fault tolerance as a benchmark.

    Runs :func:`repro.cluster.loadgen.run_soak` -- three in-process shards
    behind an R=2 router, every payload warmed and fanned out, then open-loop
    load while the busiest shard is killed (~30% in) and restarted (~65% in).
    The harness itself enforces byte-identity against the in-process API;
    the gates here hold the PR's headline robustness claims: the degraded
    phase (primary dead, replica answering) recomputes *nothing*, at least
    one read served from a fallback replica, and the readmitted shard
    resumed its exact pre-kill placement.  Latency-degradation ratios are
    recorded for trend-tracking, not gated (they are scheduler-sensitive).
    """
    from repro.cluster.loadgen import run_soak

    soak_seconds = 9.0 if quick else 24.0
    report = run_soak(
        seed=20010704,
        distinct=8,
        shards=3,
        replication=2,
        rate=24.0,
        workers=8,
        soak_seconds=soak_seconds,
        kill_shard_at=round(soak_seconds * 0.3, 1),
        restart_shard_at=round(soak_seconds * 0.65, 1),
        replications=20_000 if quick else 60_000,
        n_faults=40,
        probe_interval_ms=100.0,
        # The SLO gate over every soak phase: a degraded phase legitimately
        # burns error budget (typed errors while the primary dies), so the
        # threshold is generous -- it catches systemic failure (a whole
        # phase erroring burns at 1000x against the 0.999 objective).
        slo_max_burn=100.0,
    )
    totals = report["totals"]
    if report["events"]["chaos_errors"]:
        raise RuntimeError(f"chaos thread failed: {report['events']['chaos_errors']}")
    if totals["byte_mismatches"] or totals["untyped_failures"]:
        raise RuntimeError(
            f"soak responses diverged: {totals['byte_mismatches']} mismatches, "
            f"{totals['untyped_failures']} untyped failures"
        )
    return {
        "soak_seconds": soak_seconds,
        "requests": totals["requests"],
        "errors": totals["errors"],
        "degraded_recomputed": totals["degraded_recomputed"],
        "recomputed_after_kill": totals["recomputed_after_kill"],
        "replica_writes": report["router"]["replica_writes"],
        "replica_read_fallbacks": report["router"]["replica_read_fallbacks"],
        "health": {
            "ejects": report["router"]["shard_ejects"],
            "readmits": report["router"]["shard_readmits"],
        },
        "placement_restored": report["placement_restored"],
        "slo_gate_passed": report["slo"]["gate"]["passed"],
        "slo_worst_burn": max(
            (row["burn_rate"] for rows in report["slo"]["phases"].values()
             for row in rows),
            default=0.0,
        ),
        "fleet_rollup_matches": report["fleet"]["rollup_matches_targets"]
        if report.get("fleet")
        else None,
        "latency_degradation": report["latency_degradation"],
        "phase_latency_ms": {
            phase["phase"]: phase["latency_ms"] for phase in report["phases"]
        },
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def workload_dispatch(quick: bool) -> dict:
    """Registry-dispatch overhead of ``repro.evaluate`` versus a direct call.

    Times the same resolved ``exact`` evaluation twice: calling the
    registered function directly, and going through the full dispatch path
    (registry lookup, option resolution, typed-result wrapping).  The
    unified-API acceptance target is <5% overhead; the measured number is
    recorded so regressions in the dispatch layer show up in the perf
    trajectory.
    """
    from repro.api import default_registry, evaluate
    from repro.experiments.scenarios import many_small_faults_scenario

    model = many_small_faults_scenario(n=200)
    registry = default_registry()
    definition = registry.get("exact")
    resolved = registry.resolve_options("exact", {"max_support": 1024})
    calls = 20 if quick else 50
    repeats = 5
    # Warm the per-model caches so both loops measure identical work.
    definition.evaluate(model, resolved, None)
    evaluate(model, "exact", max_support=1024)

    def time_block(run) -> float:
        start = time.perf_counter()
        for _ in range(calls):
            run()
        return time.perf_counter() - start

    # Alternate the two paths and keep each path's best block: back-to-back
    # single blocks confound the comparison with CPU-frequency drift.
    direct = dispatched = float("inf")
    for _ in range(repeats):
        direct = min(direct, time_block(lambda: definition.evaluate(model, resolved, None)))
        dispatched = min(dispatched, time_block(lambda: evaluate(model, "exact", max_support=1024)))
    return {
        "method": "exact",
        "n": 200,
        "max_support": 1024,
        "calls": calls,
        "repeats": repeats,
        "direct_us_per_call": round(direct / calls * 1e6, 1),
        "dispatched_us_per_call": round(dispatched / calls * 1e6, 1),
        "overhead_percent": round((dispatched - direct) / direct * 100.0, 2),
        "overhead_budget_percent": 5.0,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def workload_telemetry_overhead(quick: bool) -> dict:
    """Disabled-telemetry overhead of the instrumented evaluation path.

    The tracer's contract is that an un-configured span costs one ``None``
    check, so instrumentation can live in hot paths permanently.  Raw
    wall-clock deltas between "telemetry on" and "telemetry off" runs of a
    multi-millisecond evaluation drown in scheduler noise, so the gate uses
    a *computed* ratio instead: measure the per-span disabled-path cost in
    a tight loop (nanoseconds, very stable), count how many spans one
    evaluation actually crosses (sink mode), and express their product as a
    percentage of the evaluation's own wall time.  That percentage is the
    true price of leaving the instrumentation in, and must stay under the
    2% budget.
    """
    from repro import telemetry
    from repro.api import evaluate
    from repro.experiments.scenarios import many_small_faults_scenario
    from repro.telemetry import tracing

    model = many_small_faults_scenario(n=100)
    replications = 20_000 if quick else 100_000
    calls = 10 if quick else 20
    repeats = 5

    def one():
        return evaluate(model, "montecarlo", seed=7, replications=replications)

    one()  # warm caches and imports before any timing

    # 1. Per-span cost of the disabled path (shared no-op object).
    tracing.disable(export_env=False)
    loops = 200_000
    start = time.perf_counter()
    for _ in range(loops):
        with telemetry.span("bench.noop", key="value"):
            pass
    disabled_span_ns = (time.perf_counter() - start) / loops * 1e9

    # 2. Per-span cost when armed (sink mode), for the trajectory record.
    sunk: list = []
    tracing.configure(sink=sunk.append)
    start = time.perf_counter()
    for _ in range(10_000):
        with telemetry.span("bench.noop", key="value"):
            pass
    enabled_span_us = (time.perf_counter() - start) / 10_000 * 1e6

    # 3. Spans one instrumented evaluation actually crosses.
    sunk.clear()
    one()
    spans_per_evaluate = len(sunk)
    tracing.disable(export_env=False)

    # 4. The evaluation's own wall time, telemetry disabled (best block).
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            one()
        best = min(best, time.perf_counter() - start)
    seconds_per_call = best / calls

    overhead_percent = (
        spans_per_evaluate * disabled_span_ns / 1e9 / seconds_per_call * 100.0
    )
    return {
        "method": "montecarlo",
        "n": 100,
        "replications": replications,
        "disabled_span_ns": round(disabled_span_ns, 1),
        "enabled_span_us": round(enabled_span_us, 2),
        "spans_per_evaluate": spans_per_evaluate,
        "evaluate_ms_per_call": round(seconds_per_call * 1e3, 3),
        "overhead_percent": round(overhead_percent, 5),
        "overhead_budget_percent": 2.0,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def workload_telemetry_fleet_overhead(quick: bool) -> dict:
    """Cost of the fleet observability plane on the routed serving path.

    The plane adds two moving parts on top of PR-7 tracing: span *shipping*
    on every finished span (the only per-request hot-path cost -- one lock
    plus a deque append) and the router's scrape+merge beat (off the
    request path, once per probe interval).  Raw wall-clock A/B of routed
    requests drowns in socket and scheduler noise, so the gate computes the
    hot-path price the way ``telemetry_overhead`` does: the per-span
    enqueue cost of an armed shipper (tight loop, nanoseconds, stable)
    times the spans one served request emits, as a percentage of a warm
    routed request's own wall time.  The scrape beat is reported as the
    fraction of one core it consumes (parse + store + roll-up per beat,
    amortised over the probe interval) -- it must stay far from saturating
    the probe thread.  Loss accounting rides along: every span enqueued
    during the measurement must ship, none dropped.
    """
    from repro.cluster import ShardRouter
    from repro.experiments.scenarios import many_small_faults_scenario
    from repro.service import EvaluationServer, ServiceClient, start_in_background
    from repro.telemetry import tracing
    from repro.telemetry.collector import SpanShipper
    from repro.telemetry.federation import MetricsFederation
    from repro.telemetry.metrics import MetricsRegistry, render_prometheus

    model = many_small_faults_scenario(n=100)
    replications = 20_000 if quick else 100_000
    warm_calls = 20 if quick else 50
    repeats = 5

    # 1. Per-span hot-path cost of an armed shipper: enqueue only, the
    #    transport is a no-op so the number is pure queue mechanics.
    registry = MetricsRegistry()
    shipper = SpanShipper(
        "127.0.0.1:1",
        transport=lambda batch: True,
        capacity=1_000_000,
        batch_size=1_000_000,
        flush_interval=3600.0,
        registry=registry,
    )
    event = {"name": "bench.ship", "trace": "t", "span": "s", "dur_ms": 1.0}
    loops = 100_000 if quick else 200_000
    start = time.perf_counter()
    for _ in range(loops):
        shipper(event)
    enqueue_ns = (time.perf_counter() - start) / loops * 1e9
    shipper.flush()
    shipper.close()
    spans_shipped = registry["spans_shipped"]
    spans_dropped = registry["spans_dropped"] if "spans_dropped" in registry else 0

    shard = EvaluationServer(batch_window_ms=0.0)
    with start_in_background(shard) as handle:
        router = ShardRouter([f"127.0.0.1:{handle.port}"])
        with start_in_background(router) as front:
            client = ServiceClient(port=front.port)

            def one():
                return client.evaluate_detail(
                    model, "montecarlo", options={"replications": replications}, seed=7
                )

            one()  # cold: populate caches so the timed calls are warm hits

            # 2. Spans one warm routed request emits (router + shard live in
            #    this process, so a sink sees the whole tree).
            sunk: list = []
            tracing.configure(sink=sunk.append)
            probe_calls = 5
            for _ in range(probe_calls):
                one()
            spans_per_request = len(sunk) / probe_calls
            tracing.disable(export_env=False)

            # 3. The warm request's own wall time, shipping off (best block).
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                for _ in range(warm_calls):
                    one()
                best = min(best, time.perf_counter() - start)
            seconds_per_call = best / warm_calls

            # 4. The scrape+merge beat, measured against real shard output:
            #    parse the shard's prometheus page, store it, roll the fleet
            #    up -- the exact work the probe loop does once per interval.
            shard_page = render_prometheus(shard.registry.snapshot())
            local = router.registry.snapshot()
            federation = MetricsFederation()
            beats = 200
            start = time.perf_counter()
            for _ in range(beats):
                federation.update_from_prometheus("127.0.0.1:1", shard_page)
                federation.fleet_snapshot(local)
            scrape_ms_per_beat = (time.perf_counter() - start) / beats * 1e3
            client.close()

    hot_path_percent = (
        spans_per_request * enqueue_ns / 1e9 / seconds_per_call * 100.0
    )
    scrape_cpu_percent = scrape_ms_per_beat / (router.probe_interval * 1e3) * 100.0
    return {
        "method": "montecarlo",
        "n": 100,
        "replications": replications,
        "ship_enqueue_ns": round(enqueue_ns, 1),
        "spans_per_request": spans_per_request,
        "warm_request_ms": round(seconds_per_call * 1e3, 3),
        "hot_path_percent": round(hot_path_percent, 5),
        "hot_path_budget_percent": 5.0,
        "scrape_ms_per_beat": round(scrape_ms_per_beat, 3),
        "probe_interval_ms": round(router.probe_interval * 1e3, 1),
        "scrape_cpu_percent": round(scrape_cpu_percent, 3),
        "spans_shipped": spans_shipped,
        "spans_dropped": spans_dropped,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


WORKLOADS = {
    "single": workload_single,
    "paired": workload_paired,
    "paired_streaming": workload_paired_streaming,
    "one_out_of_r": workload_one_out_of_r,
    "parallel": workload_parallel,
    "convolution": workload_convolution,
    "study": workload_study,
    "sweep1000": workload_sweep1000,
    "service_throughput": workload_service_throughput,
    "cluster_loadgen": workload_cluster_loadgen,
    "chaos_soak": workload_chaos_soak,
    "dispatch": workload_dispatch,
    "telemetry_overhead": workload_telemetry_overhead,
    "telemetry_fleet_overhead": workload_telemetry_fleet_overhead,
}


# --------------------------------------------------------------------- #
# Regression gate (--check)
# --------------------------------------------------------------------- #
def check_record(record: dict) -> list[str]:
    """Machine-independent throughput invariants for the CI gate.

    Absolute wall-times vary wildly across runners, so every check is a
    *ratio* within one record: a failure means a relative regression (one
    path got slower than its sibling), not a slow machine.
    """
    workloads = record.get("workloads", {})

    def value(workload: str, key: str):
        entry = workloads.get(workload, {})
        if "error" in entry:
            return None
        return entry.get(key)

    checks = [
        # The streaming paired path must not regress behind the
        # sample-collecting one again (it does strictly less work).
        (
            "paired_streaming >= 85% of paired throughput",
            lambda: value("paired_streaming", "replications_per_second")
            >= 0.85 * value("paired", "replications_per_second"),
        ),
        # 1-out-of-3 does ~3x the per-replication work of a single version;
        # below a quarter of the single rate the kernel has regressed.
        (
            "one_out_of_r >= 25% of single throughput",
            lambda: value("one_out_of_r", "replications_per_second")
            >= 0.25 * value("single", "replications_per_second"),
        ),
        # The batched sweep fast path must stay well ahead of per-point
        # dispatch on the 1000-point workload.
        ("sweep1000 batched >= 3x scalar", lambda: value("sweep1000", "speedup") >= 3.0),
        # Micro-batched concurrent serving must beat a serial request loop on
        # the sweep-style workload (the service's reason to exist); the
        # workload itself already enforces that the warm burst recomputed
        # nothing and that at least one batched group formed.
        (
            "service_throughput batched >= 2x serial",
            lambda: value("service_throughput", "speedup") >= 2.0,
        ),
        (
            "service_throughput warm pass recomputes nothing",
            lambda: value("service_throughput", "warm_recomputed") == 0,
        ),
        # Two routed single-worker shards must beat one on the shard-parallel
        # cold workload -- but only where two worker processes can actually
        # run in parallel; on a 1-CPU runner they time-slice one core and the
        # ratio says nothing, so the gate degrades to "the router is not a
        # bottleneck" (>= 0.75x).  The workload itself already enforces the
        # machine-independent invariants: zero errors, both shards computed,
        # no mid-run ejection.
        (
            "cluster_loadgen routed >= 1.5x single-shard (>=2 cpus)",
            lambda: value("cluster_loadgen", "routed_speedup")
            >= (1.5 if (value("cluster_loadgen", "cpus") or 0) >= 2 else 0.75),
        ),
        # The routed warm phase must be answered entirely from cache tiers.
        (
            "cluster_loadgen warm phase recomputes nothing",
            lambda: value("cluster_loadgen", "warm_recomputed") == 0,
        ),
        # The soak's headline: with R=2, killing the primary loses no warm
        # cache -- the degraded phase is answered by the fanned-out replica
        # without a single recompute.
        (
            "chaos_soak degraded phase recomputes nothing",
            lambda: value("chaos_soak", "degraded_recomputed") == 0,
        ),
        (
            "chaos_soak served at least one replica fallback read",
            lambda: value("chaos_soak", "replica_read_fallbacks") >= 1,
        ),
        # The restarted shard must resume its exact pre-kill placement (and
        # actually receive traffic for its keys again).
        (
            "chaos_soak readmitted shard resumed its placement",
            lambda: value("chaos_soak", "placement_restored") is True,
        ),
        # The declarative SLO gate over every soak phase (availability +
        # latency objectives against each phase's own histogram) must pass.
        (
            "chaos_soak SLO burn-rate gate passed",
            lambda: value("chaos_soak", "slo_gate_passed") is True,
        ),
        # The federated fleet roll-up taken mid-soak must equal the merge
        # of the per-shard scrapes exactly.
        (
            "chaos_soak fleet roll-up equals per-target merge",
            lambda: value("chaos_soak", "fleet_rollup_matches") is True,
        ),
        # Warm study runs must stay essentially free.  A broken cache makes
        # warm ~= cold (ratio ~1); the floor sits well above that while
        # leaving room for the fixed per-run cost (plan + cache probing)
        # that dominates the now-fast quick-size cold runs.
        ("study warm_speedup >= 5x", lambda: value("study", "warm_speedup") >= 5.0),
        # Dispatch overhead sanity: the registry layer adds microseconds to
        # a ~3 ms evaluation, so the measured percentage is dominated by
        # scheduler noise (observed spread: roughly -5%..+5% on shared
        # runners).  The gate therefore only catches a *broken* dispatch
        # layer -- per-call overhead comparable to the evaluation itself --
        # while the recorded overhead_percent tracks the fine trajectory.
        (
            "dispatch overhead sane (< 25%)",
            lambda: value("dispatch", "overhead_percent") < 25.0,
        ),
        # Disabled telemetry must stay near-free: the computed cost of every
        # span an evaluation crosses (spans x disabled-path ns) within 2% of
        # the evaluation itself.  A computed ratio, not an on/off wall-clock
        # diff, so it is immune to scheduler noise yet catches a disabled
        # path that grew real work.
        (
            "telemetry_overhead disabled-path <= 2% of an evaluation",
            lambda: value("telemetry_overhead", "overhead_percent") <= 2.0,
        ),
        (
            "telemetry_overhead instrumentation covers the kernel",
            lambda: value("telemetry_overhead", "spans_per_evaluate") >= 1,
        ),
        # The fleet plane's hot-path price (span enqueue x spans/request)
        # must stay within 5% of a warm routed request -- same computed-ratio
        # construction as telemetry_overhead, so it is noise-immune.
        (
            "telemetry_fleet_overhead hot path <= 5% of a warm request",
            lambda: value("telemetry_fleet_overhead", "hot_path_percent")
            <= value("telemetry_fleet_overhead", "hot_path_budget_percent"),
        ),
        # Loss accounting: every span enqueued during the measurement
        # shipped; a single drop means the bounded queue is mis-sized.
        (
            "telemetry_fleet_overhead shipped every span (zero drops)",
            lambda: value("telemetry_fleet_overhead", "spans_dropped") == 0,
        ),
        # The scrape+merge beat runs on the probe thread once per interval;
        # it must stay far from saturating a core (amortised < 5%).
        (
            "telemetry_fleet_overhead scrape beat stays off the hot path",
            lambda: value("telemetry_fleet_overhead", "scrape_cpu_percent") < 5.0,
        ),
    ]
    failures = []
    for label, predicate in checks:
        try:
            ok = bool(predicate())
        except TypeError:  # a workload errored out; report it as a failure
            ok = False
        if not ok:
            failures.append(label)
    return failures


# --------------------------------------------------------------------- #
# Orchestration
# --------------------------------------------------------------------- #
def _run_in_subprocess(name: str, quick: bool) -> dict:
    command = [sys.executable, str(Path(__file__).resolve()), "--workload", name, "--json"]
    if quick:
        command.append("--quick")
    completed = subprocess.run(command, capture_output=True, text=True, timeout=3600)
    if completed.returncode != 0:
        return {"error": completed.stderr.strip()[-2000:]}
    return json.loads(completed.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_perf.json"))
    parser.add_argument("--quick", action="store_true", help="smaller, CI-friendly sizes")
    parser.add_argument("--workload", choices=sorted(WORKLOADS), help="run one workload in-process")
    parser.add_argument("--json", action="store_true", help="print the single workload as JSON")
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit non-zero when a throughput invariant fails (machine-independent "
            "ratios within the record; used by CI so perf regressions fail visibly)"
        ),
    )
    arguments = parser.parse_args(argv)

    if arguments.workload:
        record = WORKLOADS[arguments.workload](arguments.quick)
        print(json.dumps(record, indent=None if arguments.json else 2))
        return 0

    import numpy

    record = {
        "schema": "bench-perf-v1",
        "mode": "quick" if arguments.quick else "full",
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "seed_convolution_reference": SEED_CONVOLUTION_REFERENCE,
        "workloads": {},
    }
    for name in WORKLOADS:
        print(f"running {name} ...", flush=True)
        record["workloads"][name] = _run_in_subprocess(name, arguments.quick)
        print(f"  -> {json.dumps(record['workloads'][name])[:200]}", flush=True)
    fast = {row["n"]: row["seconds"] for row in record["workloads"]["convolution"].get("fast_path", [])}
    speedups = [
        {
            "n": ref["n"],
            "max_support": ref["max_support"],
            "seed_seconds": ref["seconds"],
            "fast_seconds": fast.get(ref["n"]),
            "speedup": round(ref["seconds"] / fast[ref["n"]], 1) if fast.get(ref["n"]) else None,
        }
        for ref in SEED_CONVOLUTION_REFERENCE
        if ref["max_support"] == 4096
    ]
    record["convolution_speedup_vs_seed"] = speedups
    output = Path(arguments.output)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    if arguments.check:
        failures = check_record(record)
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        if failures:
            return 1
        print("all throughput checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
