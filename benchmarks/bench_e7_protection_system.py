"""E7 -- Fig. 1: the dual-channel, 1-out-of-2 protection system.

Demand-by-demand simulation of the stylised plant-protection architecture:
two independently developed channels, OR adjudication of shut-down outputs.
The bench develops many channel pairs, runs operational demands through the
architecture simulator, and compares single-channel versus 1-out-of-2 failure
rates with the analytic model predictions.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.adjudication.architectures import NVersionSystem
from repro.core.moments import pfd_moments
from repro.versions.generation import IndependentDevelopmentProcess


def test_e7_protection_system_simulation(benchmark, protection_scenario, bench_rng):
    """Demand-by-demand simulation of a batch of developed channel pairs.

    Because common faults are rare events, the mean system PFD over a
    realistically sized batch of developments is dominated by sampling noise;
    the demand-level simulation is therefore compared against the analytic
    PFDs of the *same* developed pairs (a paired, low-variance check), while
    the population-level gain claim is checked in
    :func:`test_e7_population_gain` with a large number of simulated
    developments.
    """
    scenario = protection_scenario
    process = IndependentDevelopmentProcess(scenario.model)

    def workload():
        pair_count, demands = 40, 3_000
        single_rates, system_rates, analytic_pair_pfds, analytic_channel_pfds = [], [], [], []
        for _ in range(pair_count):
            pair = process.sample_pair(bench_rng)
            system = NVersionSystem(
                [pair.channel_a, pair.channel_b], scenario.regions, scenario.profile
            )
            result = system.simulate(bench_rng, demands)
            single_rates.append(result.channel_pfd_estimates[0])
            system_rates.append(result.system_pfd_estimate)
            analytic_pair_pfds.append(pair.system_pfd())
            analytic_channel_pfds.append(pair.channel_a.pfd())
        return (
            float(np.mean(single_rates)),
            float(np.mean(system_rates)),
            float(np.mean(analytic_channel_pfds)),
            float(np.mean(analytic_pair_pfds)),
        )

    single_rate, system_rate, analytic_channel, analytic_pair = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )
    print_table(
        "E7: Fig. 1 protection system, demand-by-demand simulation (40 pairs)",
        ["quantity", "simulated (demands)", "analytic (same pairs)"],
        [
            ["single-channel PFD", single_rate, analytic_channel],
            ["1-out-of-2 system PFD", system_rate, analytic_pair],
        ],
    )
    # The demand-level simulation reproduces the analytic PFDs of the very
    # pairs it executed, and the 1-out-of-2 system beats the single channel.
    assert single_rate == pytest.approx(analytic_channel, abs=2e-3)
    assert system_rate == pytest.approx(analytic_pair, abs=2e-3)
    assert system_rate < single_rate


def test_e7_population_gain(benchmark, protection_scenario, bench_rng):
    """Population-level gain of the 1-out-of-2 architecture (Fig. 1 shape claim)."""
    from repro.montecarlo.engine import MonteCarloEngine

    scenario = protection_scenario

    def workload():
        return MonteCarloEngine(scenario.model).simulate_paired(200_000, rng=bench_rng)

    result = benchmark.pedantic(workload, rounds=1, iterations=1)
    analytic_single = pfd_moments(scenario.model, 1).mean
    analytic_system = pfd_moments(scenario.model, 2).mean
    print_table(
        "E7: population-level mean PFD, 200k simulated developments",
        ["quantity", "simulated", "analytic"],
        [
            ["single-channel mean PFD", result.single.mean_pfd(), analytic_single],
            ["1-out-of-2 mean PFD", result.system.mean_pfd(), analytic_system],
            ["gain factor", 1.0 / max(result.mean_ratio(), 1e-12), analytic_single / analytic_system],
        ],
    )
    # Who wins and by roughly what factor: the two-channel system is better by
    # at least the guaranteed factor 1/pmax (eq. (4)).
    guaranteed_gain = 1.0 / scenario.model.p_max
    assert result.mean_ratio() < 1.0
    assert 1.0 / result.mean_ratio() >= guaranteed_gain * 0.8
    assert result.single.mean_pfd() == pytest.approx(analytic_single, rel=0.05)


def test_e7_analytic_architecture_consistency(benchmark, protection_scenario, bench_rng):
    """The architecture's analytic PFD equals the version-pair common-fault PFD."""
    scenario = protection_scenario
    process = IndependentDevelopmentProcess(scenario.model)

    def workload():
        mismatches = 0
        for _ in range(200):
            pair = process.sample_pair(bench_rng)
            system = NVersionSystem(
                [pair.channel_a, pair.channel_b], scenario.regions, scenario.profile
            )
            if abs(system.analytic_system_pfd() - pair.system_pfd()) > 1e-12:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_table("E7: architecture vs version-pair analytic PFD", ["mismatches"], [[mismatches]])
    assert mismatches == 0
