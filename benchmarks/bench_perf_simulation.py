"""PERF -- chunked / streaming / parallel Monte Carlo throughput.

Bench for the high-throughput simulation kernel: the chunked path must be
bitwise-identical to the in-memory path (chunking is a memory knob, not a
different simulation), streaming summaries must agree with the sample-based
ones, and the throughput table records replications/second for the three
simulation kinds.  Absolute numbers land in ``BENCH_perf.json`` via
``benchmarks/run_benchmarks.py``; this bench asserts the invariants that make
those numbers meaningful.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.montecarlo.engine import MonteCarloEngine

REPLICATIONS = 200_000
CHUNK = 50_000


def test_perf_chunked_is_bitwise_identical(many_faults_model, benchmark):
    """Chunked == in-memory, bitwise, on the n=200 scenario."""
    monolithic_engine = MonteCarloEngine(many_faults_model)
    chunked_engine = MonteCarloEngine(many_faults_model, chunk_size=CHUNK)

    def workload():
        monolithic = monolithic_engine.simulate_paired(REPLICATIONS, rng=7)
        chunked = chunked_engine.simulate_paired(REPLICATIONS, rng=7)
        return monolithic, chunked

    monolithic, chunked = benchmark.pedantic(workload, rounds=1, iterations=1)
    assert np.array_equal(
        monolithic.single.pfds.samples, chunked.single.pfds.samples
    )
    assert np.array_equal(
        monolithic.system.pfds.samples, chunked.system.pfds.samples
    )
    assert monolithic.risk_ratio() == chunked.risk_ratio()


def test_perf_throughput_table(many_faults_model, benchmark):
    """Replications/second for single, paired and 1-out-of-3 streaming runs."""
    engine = MonteCarloEngine(many_faults_model, chunk_size=CHUNK)

    def workload():
        rows = []
        for label, simulate in (
            ("single (streaming)", lambda: engine.simulate_single_streaming(REPLICATIONS, rng=7)),
            ("paired 1oo2 (streaming)", lambda: engine.simulate_paired_streaming(REPLICATIONS, rng=7)),
            ("1-out-of-3 (streaming)", lambda: engine.simulate_systems_streaming(REPLICATIONS, versions=3, rng=7)),
        ):
            start = time.perf_counter()
            simulate()
            elapsed = time.perf_counter() - start
            rows.append([label, REPLICATIONS, elapsed, REPLICATIONS / elapsed])
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_table(
        "PERF: streaming simulation throughput (n=200 scenario)",
        ["kind", "replications", "seconds", "replications/s"],
        rows,
    )
    # Sanity floor: the chunked streaming path must stay comfortably above
    # what the paper-scale experiments need (loose so CI noise cannot trip it).
    for row in rows:
        assert row[3] > 20_000


def test_perf_streaming_matches_samples(many_faults_model, benchmark):
    """Streaming accumulators reproduce the sample-based summaries exactly."""
    engine = MonteCarloEngine(many_faults_model, chunk_size=CHUNK)

    def workload():
        samples = engine.simulate_paired(REPLICATIONS, rng=11)
        streamed = engine.simulate_paired_streaming(REPLICATIONS, rng=11)
        return samples, streamed

    samples, streamed = benchmark.pedantic(workload, rounds=1, iterations=1)
    # Accumulation order differs (Chan merge vs single-pass np.mean), so agree
    # to float accumulation accuracy; the zero counts are exact.
    assert streamed.single.mean_pfd() == pytest.approx(samples.single.mean_pfd(), rel=1e-12)
    assert streamed.single.std_pfd() == pytest.approx(samples.single.std_pfd(), rel=1e-10)
    assert streamed.system.prob_any_fault() == samples.system.prob_any_fault()


def test_perf_parallel_shards_consistent(many_faults_model, benchmark):
    """jobs=2 is reproducible and statistically consistent with sequential."""
    parallel_engine = MonteCarloEngine(many_faults_model, chunk_size=CHUNK, jobs=2)
    sequential_engine = MonteCarloEngine(many_faults_model, chunk_size=CHUNK)

    def workload():
        start = time.perf_counter()
        parallel = parallel_engine.simulate_paired_streaming(REPLICATIONS, rng=13)
        parallel_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        sequential = sequential_engine.simulate_paired_streaming(REPLICATIONS, rng=13)
        sequential_elapsed = time.perf_counter() - start
        return parallel, sequential, parallel_elapsed, sequential_elapsed

    parallel, sequential, parallel_elapsed, sequential_elapsed = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )
    print_table(
        "PERF: parallel versus sequential paired streaming",
        ["mode", "seconds", "mean PFD"],
        [
            ["jobs=2", parallel_elapsed, parallel.single.mean_pfd()],
            ["sequential", sequential_elapsed, sequential.single.mean_pfd()],
        ],
    )
    repeat = parallel_engine.simulate_paired_streaming(REPLICATIONS, rng=13)
    assert repeat.single.mean_pfd() == parallel.single.mean_pfd()
    # Distinct streams, same distribution: means agree within ~6 standard errors.
    tolerance = 6 * sequential.single.pfds.standard_error()
    assert abs(parallel.single.mean_pfd() - sequential.single.mean_pfd()) < tolerance
