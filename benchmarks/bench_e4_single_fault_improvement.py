"""E4 -- Appendix A: improving a single fault class can reduce the diversity gain.

The paper's counter-intuitive headline: the partial derivative of the eq. (10)
ratio with respect to a single ``p_i`` can take either sign, so a process
improvement targeting one fault class may make the two-channel system *less*
superior to a single channel.  For n = 2 there is a closed-form reversal
point.

Reproduction note (DESIGN.md section 3.5): our re-derivation places the
reversal at ``p_1* = p_2 (sqrt(2(1+p_2)) - (1+p_2)) / (1 - p_2^2)``, which is
*below* ``p_2`` (~0.155 for ``p_2 = 0.5``); the qualitative sign-reversal
result is exactly as the paper describes.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.fault_model import FaultModel
from repro.core.process_improvement import (
    risk_ratio_partial_derivative,
    risk_ratio_single_fault_sweep,
    single_fault_reversal_point,
    two_fault_reversal_point,
)


def test_e4_two_fault_reversal(benchmark):
    """Sweep p1 with p2 = 0.5 fixed and locate the reversal of the gain trend."""
    p_other = 0.5
    values = np.linspace(0.01, 0.99, 197)

    def workload():
        model = FaultModel(p=np.array([0.3, p_other]), q=np.array([0.1, 0.1]))
        return risk_ratio_single_fault_sweep(model, 0, values)

    sweep = benchmark(workload)
    closed_form = two_fault_reversal_point(p_other)
    minimiser = sweep.argmin_ratio()
    sample_rows = [
        [float(values[i]), float(sweep.risk_ratios[i]), float(sweep.risk_single[i])]
        for i in range(0, len(values), 28)
    ]
    print_table(
        "E4: ratio vs p1 (p2 = 0.5); reversal expected near p1* = %.4f" % closed_form,
        ["p1", "risk ratio", "P(N1>0)"],
        sample_rows,
    )
    # The sweep is not monotone: there is a genuine trend reversal.
    assert not sweep.ratio_is_monotone_nondecreasing()
    # The reversal sits at the closed-form point.
    assert minimiser == pytest.approx(closed_form, abs=0.01)
    # Below the reversal the derivative is negative (improving the process on
    # that fault REDUCES the gain from diversity), above it is positive.
    below = FaultModel(p=np.array([closed_form * 0.5, p_other]), q=np.array([0.1, 0.1]))
    above = FaultModel(p=np.array([closed_form * 1.5, p_other]), q=np.array([0.1, 0.1]))
    assert risk_ratio_partial_derivative(below, 0) < 0.0
    assert risk_ratio_partial_derivative(above, 0) > 0.0
    # Reliability itself still improves monotonically as p1 decreases.
    assert np.all(np.diff(sweep.risk_single) > 0.0)


def test_e4_general_model_reversal(benchmark, high_quality_model):
    """The reversal phenomenon persists for a realistic multi-fault model."""

    def workload():
        return single_fault_reversal_point(high_quality_model, index=4)

    reversal = benchmark(workload)
    print_table(
        "E4: numerically located reversal point, high-quality scenario (fault 5)",
        ["fault", "reversal p"],
        [[high_quality_model.names[4], reversal if reversal is not None else "none"]],
    )
    assert reversal is not None
    assert 0.0 < reversal < 1.0
    # At the located point the derivative vanishes.
    at_root = high_quality_model.with_probability(4, reversal)
    assert risk_ratio_partial_derivative(at_root, 4) == pytest.approx(0.0, abs=1e-8)
