"""E3 -- Section 4.1, eq. (10): the risk ratio ``P(N2>0) / P(N1>0)``.

The paper proves the ratio never exceeds 1 (diversity never hurts) and the
surrounding discussion implies the gain grows as fault probabilities shrink.
The bench sweeps homogeneous and heterogeneous models, checks the exact ratio
against Monte Carlo simulation, and records the series.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.fault_model import FaultModel
from repro.core.no_common_faults import prob_any_common_fault, prob_any_fault, risk_ratio
from repro.montecarlo.engine import MonteCarloEngine


def _ratio_series():
    rows = []
    for probability in (0.3, 0.1, 0.03, 0.01, 0.003):
        model = FaultModel.homogeneous(10, probability=probability, impact=0.01)
        rows.append(
            (
                probability,
                prob_any_fault(model),
                prob_any_common_fault(model),
                risk_ratio(model),
            )
        )
    return rows


def test_e3_exact_ratio_series(benchmark):
    rows = benchmark(_ratio_series)
    print_table(
        "E3: eq. (10) risk ratio, homogeneous models (n=10)",
        ["p", "P(N1>0)", "P(N2>0)", "ratio"],
        [list(row) for row in rows],
    )
    ratios = [row[3] for row in rows]
    # The ratio never exceeds 1 and shrinks as the process improves.
    assert all(ratio <= 1.0 for ratio in ratios)
    assert all(earlier > later for earlier, later in zip(ratios, ratios[1:]))
    # For small p the homogeneous-model ratio approaches p (n p^2 / n p).
    assert ratios[-1] == pytest.approx(0.003, rel=0.1)


def test_e3_ratio_matches_simulation(benchmark, bench_rng):
    model = FaultModel(
        p=np.array([0.15, 0.1, 0.08, 0.05, 0.02]),
        q=np.array([0.02, 0.05, 0.01, 0.1, 0.03]),
    )

    def workload():
        return MonteCarloEngine(model).simulate_paired(60_000, rng=bench_rng).risk_ratio()

    simulated = benchmark.pedantic(workload, rounds=1, iterations=1)
    exact = risk_ratio(model)
    print_table(
        "E3: exact vs simulated risk ratio (heterogeneous model)",
        ["exact", "simulated"],
        [[exact, simulated]],
    )
    assert simulated == pytest.approx(exact, rel=0.1)
