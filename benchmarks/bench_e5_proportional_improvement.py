"""E5 -- Appendix B: proportional process improvement always increases the gain.

With ``p_i = k b_i``, the derivative of the eq. (10) ratio with respect to
``k`` is non-negative for all admissible parameters: improving the process
proportionally (reducing ``k``) always reduces the ratio, i.e. always
increases the advantage of the two-channel system.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.core.fault_model import FaultModel
from repro.core.process_improvement import (
    proportional_improvement_derivative,
    risk_ratio_proportional_sweep,
)


def test_e5_ratio_monotone_in_k(benchmark, high_quality_model, many_faults_model):
    """Sweep k for three base models and confirm monotonicity of the ratio."""
    heterogeneous = FaultModel(
        p=np.array([0.4, 0.2, 0.1, 0.05, 0.01]),
        q=np.array([0.02, 0.05, 0.01, 0.1, 0.03]),
    )
    k_values = np.linspace(0.05, 1.0, 39)

    def workload():
        return {
            "high quality": risk_ratio_proportional_sweep(high_quality_model, k_values),
            "many small faults": risk_ratio_proportional_sweep(many_faults_model, k_values),
            "heterogeneous": risk_ratio_proportional_sweep(heterogeneous, k_values),
        }

    sweeps = benchmark(workload)
    rows = []
    for name, sweep in sweeps.items():
        rows.append(
            [
                name,
                float(sweep.risk_ratios[0]),
                float(sweep.risk_ratios[len(k_values) // 2]),
                float(sweep.risk_ratios[-1]),
                sweep.ratio_is_monotone_nondecreasing(),
            ]
        )
    print_table(
        "E5: eq. (10) ratio vs process-quality factor k (Appendix B)",
        ["model", "ratio @ k=0.05", "ratio @ k~0.5", "ratio @ k=1.0", "monotone"],
        rows,
    )
    for sweep in sweeps.values():
        assert sweep.ratio_is_monotone_nondecreasing(atol=1e-10)


def test_e5_derivative_sign(benchmark):
    """The analytic derivative with respect to k is non-negative across a parameter grid."""
    rng = np.random.default_rng(5)
    base_models = [FaultModel.random(rng, n=8, p_range=(0.01, 0.5)) for _ in range(20)]
    k_grid = np.linspace(0.1, 0.95, 12)

    def workload():
        worst = np.inf
        for base in base_models:
            for k in k_grid:
                worst = min(worst, proportional_improvement_derivative(base, float(k)))
        return worst

    worst_derivative = benchmark(workload)
    print_table(
        "E5: minimum d(ratio)/dk over 20 random models x 12 k values",
        ["minimum derivative"],
        [[worst_derivative]],
    )
    assert worst_derivative >= -1e-10
