"""E1 -- Section 5.1 table: ``p_max`` versus ``sqrt(p_max (1 + p_max))``.

Paper values: 0.5 -> 0.866, 0.1 -> 0.332, 0.01 -> 0.100 ("The last line gives
us a 10-fold improvement, from using diversity, in any confidence bound on
system PFD").  The bench regenerates the table, confirms the printed values,
and verifies by Monte Carlo that the factor really does bound the simulated
bound ratio for a concrete model with the given ``p_max``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.bounds import PAPER_PMAX_TABLE, pmax_gain_table, std_gain_factor
from repro.core.fault_model import FaultModel
from repro.montecarlo.engine import MonteCarloEngine


def _build_table():
    return pmax_gain_table([0.5, 0.1, 0.01])


def test_e1_pmax_gain_table(benchmark):
    """Regenerate the Section 5.1 table and check it against the printed values."""
    table = benchmark(_build_table)
    rows = [[row.p_max, row.gain_factor, row.improvement_factor] for row in table]
    print_table("E1: pmax vs sqrt(pmax(1+pmax)) (paper Section 5.1)",
                ["pmax", "gain factor", "improvement"], rows)
    for row in table:
        assert row.gain_factor == pytest.approx(PAPER_PMAX_TABLE[row.p_max], abs=5e-4)
    # "The last line gives us a 10-fold improvement."
    assert table[-1].improvement_factor == pytest.approx(10.0, rel=0.01)


def test_e1_factor_bounds_simulated_ratio(benchmark, bench_rng):
    """The guaranteed factor really bounds a simulated bound ratio (pmax = 0.1)."""

    def workload():
        model = FaultModel(
            p=np.array([0.1, 0.05, 0.02, 0.01]),
            q=np.array([0.05, 0.1, 0.02, 0.2]),
        )
        result = MonteCarloEngine(model).simulate_paired(40_000, rng=bench_rng)
        return model, result.bound_ratio(2.33)

    model, simulated_ratio = benchmark.pedantic(workload, rounds=1, iterations=1)
    guaranteed = std_gain_factor(model.p_max)
    print_table(
        "E1: simulated bound ratio vs guaranteed factor",
        ["pmax", "simulated ratio", "guaranteed factor"],
        [[model.p_max, simulated_ratio, guaranteed]],
    )
    assert simulated_ratio <= guaranteed + 0.02
